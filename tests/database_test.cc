// Tests for the storage engine: catalog, temporal DML (birth / death /
// reincarnation / assignment), schema evolution (Figure 6), persistence
// and the change log.

#include "storage/database.h"

#include <gtest/gtest.h>

#include "storage/changelog.h"
#include "storage/catalog.h"

namespace hrdm::storage {
namespace {

const Lifespan kFull = Span(0, 99);

std::vector<AttributeDef> EmpAttrs() {
  return {{"Name", DomainType::kString, kFull, InterpolationKind::kDiscrete},
          {"Salary", DomainType::kInt, kFull, InterpolationKind::kStepwise}};
}

std::vector<Value> Key(const std::string& name) {
  return {Value::String(name)};
}

Database MakeEmpDb() {
  Database db;
  EXPECT_TRUE(db.CreateRelation("emp", EmpAttrs(), {"Name"}).ok());
  auto scheme = *db.catalog().Get("emp");
  Tuple::Builder b(scheme, Span(0, 19));
  b.SetConstant("Name", Value::String("john"));
  b.SetAt("Salary", 0, Value::Int(10000));
  EXPECT_TRUE(db.Insert("emp", *std::move(b).Build()).ok());
  return db;
}

TEST(CatalogTest, RegisterGetDrop) {
  Catalog c;
  ASSERT_TRUE(c.Create("emp", EmpAttrs(), {"Name"}).ok());
  EXPECT_TRUE(c.Contains("emp"));
  EXPECT_FALSE(c.Create("emp", EmpAttrs(), {"Name"}).ok());  // duplicate
  EXPECT_TRUE(c.Get("emp").ok());
  EXPECT_FALSE(c.Get("nope").ok());
  ASSERT_TRUE(c.Drop("emp").ok());
  EXPECT_FALSE(c.Contains("emp"));
  EXPECT_FALSE(c.Drop("emp").ok());
}

TEST(CatalogTest, RejectsKeylessBaseRelations) {
  Catalog c;
  auto keyless = RelationScheme::Make("d", EmpAttrs(), {});
  ASSERT_TRUE(keyless.ok());
  EXPECT_FALSE(c.Register(*keyless).ok());
}

TEST(CatalogTest, Figure6EvolutionStory) {
  // Daily-Trading-Volume: collected over [0,t2], dropped, re-adopted at t3.
  Catalog c;
  ASSERT_TRUE(c.Create("stocks", EmpAttrs(), {"Name"}).ok());
  ASSERT_TRUE(c.AddAttribute("stocks",
                             {"Volume", DomainType::kInt, kFull,
                              InterpolationKind::kStepwise})
                  .ok());
  ASSERT_TRUE(c.CloseAttribute("stocks", "Volume", 50).ok());
  auto s1 = *c.Get("stocks");
  EXPECT_EQ(s1->AttributeLifespan(*s1->IndexOf("Volume")).ToString(),
            "{[0,49]}");
  ASSERT_TRUE(c.ReopenAttribute("stocks", "Volume", Span(70, 99)).ok());
  auto s2 = *c.Get("stocks");
  EXPECT_EQ(s2->AttributeLifespan(*s2->IndexOf("Volume")).ToString(),
            "{[0,49],[70,99]}");
  // Key attributes cannot be closed.
  EXPECT_FALSE(c.CloseAttribute("stocks", "Name", 10).ok());
}

TEST(DatabaseTest, InsertAndGet) {
  Database db = MakeEmpDb();
  auto rel = db.Get("emp");
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ((*rel)->size(), 1u);
  EXPECT_FALSE(db.Get("nope").ok());
}

TEST(DatabaseTest, AssignWritesHistory) {
  Database db = MakeEmpDb();
  ASSERT_TRUE(
      db.Assign("emp", Key("john"), "Salary", Span(10, 19), Value::Int(20000))
          .ok());
  const Relation& rel = **db.Get("emp");
  const Tuple& t = rel.tuple(0);
  EXPECT_EQ(*t.ModelValueAt(1, 5), Value::Int(10000));
  EXPECT_EQ(*t.ModelValueAt(1, 15), Value::Int(20000));
  // Overwrite part of the history.
  ASSERT_TRUE(
      db.Assign("emp", Key("john"), "Salary", Span(15, 19), Value::Int(30000))
          .ok());
  const Tuple& t2 = (**db.Get("emp")).tuple(0);
  EXPECT_EQ(*t2.ModelValueAt(1, 12), Value::Int(20000));
  EXPECT_EQ(*t2.ModelValueAt(1, 17), Value::Int(30000));
}

TEST(DatabaseTest, AssignValidation) {
  Database db = MakeEmpDb();
  // Outside the tuple lifespan.
  EXPECT_FALSE(
      db.Assign("emp", Key("john"), "Salary", Span(50, 60), Value::Int(1))
          .ok());
  // Key attributes are immutable.
  EXPECT_FALSE(db.Assign("emp", Key("john"), "Name", Span(0, 5),
                         Value::String("x"))
                   .ok());
  // Unknown tuple.
  EXPECT_FALSE(
      db.Assign("emp", Key("ghost"), "Salary", Span(0, 5), Value::Int(1))
          .ok());
}

TEST(DatabaseTest, DeathAndReincarnation) {
  Database db = MakeEmpDb();
  // Fire john at chronon 10.
  ASSERT_TRUE(db.EndLifespan("emp", Key("john"), 10).ok());
  {
    const Tuple& t = (**db.Get("emp")).tuple(0);
    EXPECT_EQ(t.lifespan().ToString(), "{[0,9]}");
  }
  // Re-hire over [30,49] — the lifespan becomes non-contiguous.
  ASSERT_TRUE(db.Reincarnate("emp", Key("john"), Span(30, 49)).ok());
  {
    const Tuple& t = (**db.Get("emp")).tuple(0);
    EXPECT_EQ(t.lifespan().ToString(), "{[0,9],[30,49]}");
    // The key is total on the extended lifespan.
    EXPECT_EQ(t.value(0).domain(), t.lifespan());
    // Salary history in the new incarnation starts empty.
    EXPECT_TRUE(t.ValueAt(1, 35).absent());
  }
  ASSERT_TRUE(
      db.Assign("emp", Key("john"), "Salary", Span(30, 49), Value::Int(500))
          .ok());
  EXPECT_EQ(*(**db.Get("emp")).tuple(0).ModelValueAt(1, 40),
            Value::Int(500));
}

TEST(DatabaseTest, EndLifespanBeforeBirthRemovesTuple) {
  Database db = MakeEmpDb();
  ASSERT_TRUE(db.EndLifespan("emp", Key("john"), 0).ok());
  EXPECT_TRUE((*db.Get("emp"))->empty());
}

TEST(DatabaseTest, SchemaEvolutionRebindsTuples) {
  Database db = MakeEmpDb();
  ASSERT_TRUE(db.Assign("emp", Key("john"), "Salary", Span(0, 19),
                        Value::Int(10000))
                  .ok());
  // Close Salary at 10: stored history beyond the new ALS is clipped.
  ASSERT_TRUE(db.CloseAttribute("emp", "Salary", 10).ok());
  const Relation& rel = **db.Get("emp");
  EXPECT_EQ(rel.tuple(0).value(1).domain().ToString(), "{[0,9]}");
  // Reopen and verify assignability over the reopened region.
  ASSERT_TRUE(db.ReopenAttribute("emp", "Salary", Span(15, 19)).ok());
  ASSERT_TRUE(
      db.Assign("emp", Key("john"), "Salary", Span(15, 19), Value::Int(7))
          .ok());
  EXPECT_EQ((**db.Get("emp")).tuple(0).ValueAt(1, 16), Value::Int(7));
  // The closed region [10,14] stays unassignable.
  EXPECT_FALSE(
      db.Assign("emp", Key("john"), "Salary", Span(11, 12), Value::Int(7))
          .ok());
}

TEST(DatabaseTest, AddAttribute) {
  Database db = MakeEmpDb();
  ASSERT_TRUE(db.AddAttribute("emp", {"Dept", DomainType::kString, kFull,
                                      InterpolationKind::kStepwise})
                  .ok());
  const Relation& rel = **db.Get("emp");
  EXPECT_EQ(rel.scheme()->arity(), 3u);
  ASSERT_TRUE(db.Assign("emp", Key("john"), "Dept", Span(0, 19),
                        Value::String("tools"))
                  .ok());
  EXPECT_EQ((**db.Get("emp")).tuple(0).ValueAt(2, 5),
            Value::String("tools"));
}

TEST(DatabaseTest, SnapshotRoundTrip) {
  Database db = MakeEmpDb();
  ASSERT_TRUE(db.CreateRelation(
                    "dept",
                    {{"DName", DomainType::kString, kFull,
                      InterpolationKind::kDiscrete}},
                    {"DName"})
                  .ok());
  ASSERT_TRUE(db.RegisterForeignKey("emp", {"Name"}, "emp").ok());
  const std::string path = "/tmp/hrdm_database_test.bin";
  ASSERT_TRUE(db.Save(path).ok());
  auto loaded = Database::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->RelationNames(), db.RelationNames());
  EXPECT_TRUE((*loaded->Get("emp"))->EqualsAsSet(**db.Get("emp")));
  EXPECT_EQ(loaded->foreign_keys().size(), 1u);
  std::remove(path.c_str());
}

TEST(DatabaseTest, DecodeRejectsGarbage) {
  auto bad = Database::DecodeSnapshot("not a snapshot");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kCorruption);
}

TEST(ChangeLogTest, ReplayReproducesDatabase) {
  LoggedDatabase ldb;
  ASSERT_TRUE(ldb.CreateRelation("emp", EmpAttrs(), {"Name"}).ok());
  {
    auto scheme = *ldb.db().catalog().Get("emp");
    Tuple::Builder b(scheme, Span(0, 19));
    b.SetConstant("Name", Value::String("john"));
    ASSERT_TRUE(ldb.Insert("emp", *std::move(b).Build()).ok());
  }
  ASSERT_TRUE(ldb.Assign("emp", Key("john"), "Salary", Span(0, 9),
                         Value::Int(10))
                  .ok());
  ASSERT_TRUE(ldb.EndLifespan("emp", Key("john"), 15).ok());
  ASSERT_TRUE(ldb.Reincarnate("emp", Key("john"), Span(30, 40)).ok());
  ASSERT_TRUE(ldb.CloseAttribute("emp", "Salary", 35).ok());
  ASSERT_TRUE(ldb.ReopenAttribute("emp", "Salary", Span(38, 40)).ok());
  ASSERT_TRUE(ldb.AddAttribute("emp", {"Dept", DomainType::kString, kFull,
                                       InterpolationKind::kStepwise})
                  .ok());

  Database replayed;
  ASSERT_TRUE(ldb.log().Replay(&replayed).ok());
  EXPECT_EQ(replayed.EncodeSnapshot(), ldb.db().EncodeSnapshot());
}

TEST(ChangeLogTest, FailedMutationsAreNotLogged) {
  LoggedDatabase ldb;
  ASSERT_TRUE(ldb.CreateRelation("emp", EmpAttrs(), {"Name"}).ok());
  EXPECT_FALSE(
      ldb.Assign("emp", Key("ghost"), "Salary", Span(0, 1), Value::Int(1))
          .ok());
  EXPECT_EQ(ldb.log().size(), 1u);  // only the CreateRelation
  Database replayed;
  EXPECT_TRUE(ldb.log().Replay(&replayed).ok());
}

TEST(ChangeLogTest, TornTailIsTolerated) {
  LoggedDatabase ldb;
  ASSERT_TRUE(ldb.CreateRelation("emp", EmpAttrs(), {"Name"}).ok());
  {
    auto scheme = *ldb.db().catalog().Get("emp");
    Tuple::Builder b(scheme, Span(0, 19));
    b.SetConstant("Name", Value::String("john"));
    ASSERT_TRUE(ldb.Insert("emp", *std::move(b).Build()).ok());
  }
  std::string encoded = ldb.log().Encode();
  // Simulate a crash mid-append: cut the final record in half.
  std::string torn = encoded.substr(0, encoded.size() - 5);
  auto recovered = ChangeLog::Decode(torn);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->size(), 1u);  // the torn Insert is dropped
  Database replayed;
  EXPECT_TRUE(recovered->Replay(&replayed).ok());
  EXPECT_TRUE((*replayed.Get("emp"))->empty());
}

TEST(ChangeLogTest, SaveLoadRoundTrip) {
  LoggedDatabase ldb;
  ASSERT_TRUE(ldb.CreateRelation("emp", EmpAttrs(), {"Name"}).ok());
  const std::string path = "/tmp/hrdm_changelog_test.bin";
  ASSERT_TRUE(ldb.log().SaveTo(path).ok());
  auto loaded = ChangeLog::LoadFrom(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), ldb.log().size());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hrdm::storage
