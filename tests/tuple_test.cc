// Tests for Tuple = <v, l> (Section 3): builder validation, vls (Figures
// 7–8), restriction, merge (Section 4.1) and materialization (Figure 9).

#include "core/tuple.h"

#include <gtest/gtest.h>

namespace hrdm {
namespace {

const Lifespan kFull = Span(0, 99);

SchemePtr EmpScheme() {
  static SchemePtr scheme = *RelationScheme::Make(
      "emp",
      {{"Name", DomainType::kString, kFull, InterpolationKind::kDiscrete},
       {"Salary", DomainType::kInt, kFull, InterpolationKind::kStepwise},
       {"Dept", DomainType::kString, kFull, InterpolationKind::kStepwise}},
      {"Name"});
  return scheme;
}

/// Scheme whose Dept attribute is only defined over [0,49] — the Figure 7
/// attribute-lifespan interaction.
SchemePtr GappedScheme() {
  static SchemePtr scheme = *RelationScheme::Make(
      "emp2",
      {{"Name", DomainType::kString, kFull, InterpolationKind::kDiscrete},
       {"Dept", DomainType::kString, Span(0, 49),
        InterpolationKind::kStepwise}},
      {"Name"});
  return scheme;
}

TEST(TupleBuilderTest, BuildsValidTuple) {
  Tuple::Builder b(EmpScheme(), Span(10, 30));
  b.SetConstant("Name", Value::String("john"));
  b.SetConstant("Salary", Value::Int(30000));
  b.SetAt("Dept", 10, Value::String("tools"));
  auto t = std::move(b).Build();
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->lifespan().ToString(), "{[10,30]}");
  EXPECT_EQ(t->ValueAt(0, 15), Value::String("john"));
  EXPECT_EQ(t->ValueAt(1, 30), Value::Int(30000));
}

TEST(TupleBuilderTest, RejectsEmptyLifespan) {
  Tuple::Builder b(EmpScheme(), Lifespan::Empty());
  b.SetConstant("Name", Value::String("x"));
  EXPECT_FALSE(std::move(b).Build().ok());
}

TEST(TupleBuilderTest, RejectsUnknownAttribute) {
  Tuple::Builder b(EmpScheme(), Span(0, 5));
  b.SetConstant("Name", Value::String("x"));
  b.SetConstant("Bonus", Value::Int(1));
  auto t = std::move(b).Build();
  EXPECT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kNotFound);
}

TEST(TupleBuilderTest, RejectsMissingKey) {
  Tuple::Builder b(EmpScheme(), Span(0, 5));
  b.SetConstant("Salary", Value::Int(1));
  auto t = std::move(b).Build();
  EXPECT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kConstraintViolation);
}

TEST(TupleBuilderTest, RejectsNonConstantKey) {
  // DOM(K) ⊆ CD: key attributes must be constant-valued.
  Tuple::Builder b(EmpScheme(), Span(0, 5));
  auto name = TemporalValue::FromSegments(
      {{Interval(0, 2), Value::String("a")},
       {Interval(3, 5), Value::String("b")}});
  b.Set("Name", *name);
  auto t = std::move(b).Build();
  EXPECT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kConstraintViolation);
}

TEST(TupleBuilderTest, RejectsPartialKey) {
  Tuple::Builder b(EmpScheme(), Span(0, 5));
  b.Set("Name", *TemporalValue::Constant(Span(0, 3), Value::String("a")));
  auto t = std::move(b).Build();
  EXPECT_FALSE(t.ok());
}

TEST(TupleBuilderTest, RejectsTypeMismatch) {
  Tuple::Builder b(EmpScheme(), Span(0, 5));
  b.SetConstant("Name", Value::String("x"));
  b.SetConstant("Salary", Value::String("lots"));
  auto t = std::move(b).Build();
  EXPECT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kTypeError);
}

TEST(TupleBuilderTest, RejectsValueEscapingVls) {
  Tuple::Builder b(EmpScheme(), Span(10, 20));
  b.SetConstant("Name", Value::String("x"));
  b.SetAt("Salary", 5, Value::Int(1));  // outside tuple lifespan
  auto t = std::move(b).Build();
  EXPECT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kConstraintViolation);
}

TEST(TupleBuilderTest, NonKeyValuesMayBePartial) {
  Tuple::Builder b(EmpScheme(), Span(0, 20));
  b.SetConstant("Name", Value::String("x"));
  b.SetAt("Salary", 3, Value::Int(10));
  auto t = std::move(b).Build();
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->value(2).empty());  // Dept never set — fine
}

TEST(TupleVlsTest, VlsIsTupleLifespanIntersectALS) {
  // Figure 7: the value lifespan is X ∩ Y.
  Tuple::Builder b(GappedScheme(), Span(30, 80));
  b.SetConstant("Name", Value::String("x"));
  b.SetConstant("Dept", Value::String("tools"));
  auto t = std::move(b).Build();
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->Vls(0).ToString(), "{[30,80]}");   // Name: ALS full
  EXPECT_EQ(t->Vls(1).ToString(), "{[30,49]}");   // Dept: clipped by ALS
  // SetConstant wrote over the whole vls only.
  EXPECT_EQ(t->value(1).domain().ToString(), "{[30,49]}");
  EXPECT_TRUE(t->ValueAt(1, 60).absent());
}

TEST(TupleVlsTest, VlsOfAttributeSetIntersects) {
  Tuple::Builder b(GappedScheme(), Span(30, 80));
  b.SetConstant("Name", Value::String("x"));
  auto t = *std::move(b).Build();
  EXPECT_EQ(t.VlsOf({0, 1}).ToString(), "{[30,49]}");
  EXPECT_EQ(t.VlsOf({}).ToString(), "{[30,80]}");
}

TEST(TupleTest, ModelValueInterpolatesStepwise) {
  Tuple::Builder b(EmpScheme(), Span(0, 20));
  b.SetConstant("Name", Value::String("x"));
  b.SetAt("Salary", 0, Value::Int(10));
  b.SetAt("Salary", 10, Value::Int(20));
  auto t = *std::move(b).Build();
  // Stored value is two points; the model level fills the gaps stepwise.
  EXPECT_TRUE(t.ValueAt(1, 5).absent());
  EXPECT_EQ(*t.ModelValueAt(1, 5), Value::Int(10));
  EXPECT_EQ(*t.ModelValueAt(1, 15), Value::Int(20));
  EXPECT_EQ(*t.ModelValueAt(1, 20), Value::Int(20));
}

TEST(TupleTest, MaterializedIsIdempotent) {
  Tuple::Builder b(EmpScheme(), Span(0, 20));
  b.SetConstant("Name", Value::String("x"));
  b.SetAt("Salary", 0, Value::Int(10));
  auto t = *std::move(b).Build();
  auto m1 = *t.Materialized();
  auto m2 = *m1.Materialized();
  EXPECT_EQ(m1, m2);
  EXPECT_EQ(m1.value(1).domain(), m1.Vls(1));
}

TEST(TupleTest, RestrictClipsLifespanAndValues) {
  Tuple::Builder b(EmpScheme(), Span(0, 30));
  b.SetConstant("Name", Value::String("x"));
  b.SetConstant("Salary", Value::Int(10));
  auto t = *std::move(b).Build();
  Tuple r = t.Restrict(Span(10, 15), EmpScheme());
  EXPECT_EQ(r.lifespan().ToString(), "{[10,15]}");
  EXPECT_EQ(r.value(0).domain().ToString(), "{[10,15]}");
  EXPECT_EQ(r.value(1).domain().ToString(), "{[10,15]}");
  // Restriction to a disjoint window produces an empty tuple (dropped by
  // the algebra).
  EXPECT_TRUE(t.Restrict(Span(50, 60), EmpScheme()).lifespan().empty());
}

TEST(TupleMergeTest, MergeablePerSection41) {
  // Same key, non-contradicting values on the overlap.
  Tuple::Builder b1(EmpScheme(), Span(0, 10));
  b1.SetConstant("Name", Value::String("john"));
  b1.SetConstant("Salary", Value::Int(10));
  auto t1 = *std::move(b1).Build();

  Tuple::Builder b2(EmpScheme(), Span(5, 20));
  b2.SetConstant("Name", Value::String("john"));
  b2.Set("Salary", *TemporalValue::Constant(Span(5, 20), Value::Int(10)));
  auto t2 = *std::move(b2).Build();

  EXPECT_TRUE(t1.MergeableWith(t2));
  auto merged = t1.Merge(t2, EmpScheme());
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->lifespan().ToString(), "{[0,20]}");
  EXPECT_EQ(merged->ValueAt(1, 18), Value::Int(10));
}

TEST(TupleMergeTest, DifferentKeysNotMergeable) {
  Tuple::Builder b1(EmpScheme(), Span(0, 10));
  b1.SetConstant("Name", Value::String("john"));
  auto t1 = *std::move(b1).Build();
  Tuple::Builder b2(EmpScheme(), Span(0, 10));
  b2.SetConstant("Name", Value::String("mary"));
  auto t2 = *std::move(b2).Build();
  EXPECT_FALSE(t1.MergeableWith(t2));
  EXPECT_FALSE(t1.Merge(t2, EmpScheme()).ok());
}

TEST(TupleMergeTest, ContradictionNotMergeable) {
  Tuple::Builder b1(EmpScheme(), Span(0, 10));
  b1.SetConstant("Name", Value::String("john"));
  b1.SetConstant("Salary", Value::Int(10));
  auto t1 = *std::move(b1).Build();
  Tuple::Builder b2(EmpScheme(), Span(5, 20));
  b2.SetConstant("Name", Value::String("john"));
  b2.Set("Salary", *TemporalValue::Constant(Span(5, 20), Value::Int(99)));
  auto t2 = *std::move(b2).Build();
  EXPECT_FALSE(t1.MergeableWith(t2));  // contradict on [5,10]
}

TEST(TupleTest, KeyValuesAndHash) {
  Tuple::Builder b(EmpScheme(), Span(0, 10));
  b.SetConstant("Name", Value::String("john"));
  auto t = *std::move(b).Build();
  EXPECT_EQ(t.KeyValues(), std::vector<Value>{Value::String("john")});
  Tuple::Builder b2(EmpScheme(), Span(20, 30));
  b2.SetConstant("Name", Value::String("john"));
  auto t2 = *std::move(b2).Build();
  EXPECT_EQ(t.KeyHash(), t2.KeyHash());
  EXPECT_TRUE(t.SameKeyAs(t2));
}

TEST(TupleTest, ReincarnationLifespans) {
  // Section 1: hire, fire, re-hire — a non-contiguous lifespan.
  const Lifespan life =
      Lifespan::FromIntervals({Interval(0, 9), Interval(30, 49)});
  Tuple::Builder b(EmpScheme(), life);
  b.SetConstant("Name", Value::String("john"));
  b.SetConstant("Salary", Value::Int(10));
  auto t = *std::move(b).Build();
  EXPECT_EQ(t.lifespan().IntervalCount(), 2u);
  EXPECT_TRUE(t.lifespan().Contains(5));
  EXPECT_FALSE(t.lifespan().Contains(20));  // the "dead" period
  EXPECT_TRUE(t.lifespan().Contains(40));
  EXPECT_TRUE(t.ValueAt(1, 20).absent());
}

}  // namespace
}  // namespace hrdm
