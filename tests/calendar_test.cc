// Tests for the civil-date calendar over the chronon line.

#include "core/calendar.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace hrdm {
namespace {

TEST(CalendarTest, EpochIsZero) {
  EXPECT_EQ(*ChrononFromDate({1970, 1, 1}), 0);
  EXPECT_EQ(DateFromChronon(0), (CivilDate{1970, 1, 1}));
}

TEST(CalendarTest, KnownDates) {
  EXPECT_EQ(*ChrononFromDate({1970, 1, 2}), 1);
  EXPECT_EQ(*ChrononFromDate({1969, 12, 31}), -1);
  EXPECT_EQ(*ChrononFromDate({2000, 3, 1}), 11017);
  EXPECT_EQ(*ChrononFromDate({2026, 6, 13}), 20617);
}

TEST(CalendarTest, LeapYearHandling) {
  EXPECT_TRUE(ChrononFromDate({2000, 2, 29}).ok());   // 400-rule leap
  EXPECT_FALSE(ChrononFromDate({1900, 2, 29}).ok());  // 100-rule non-leap
  EXPECT_TRUE(ChrononFromDate({2024, 2, 29}).ok());
  EXPECT_FALSE(ChrononFromDate({2023, 2, 29}).ok());
  EXPECT_FALSE(ChrononFromDate({2023, 4, 31}).ok());
  EXPECT_FALSE(ChrononFromDate({2023, 13, 1}).ok());
  EXPECT_FALSE(ChrononFromDate({2023, 1, 0}).ok());
}

TEST(CalendarTest, RoundTripSweep) {
  // Every chronon in a window spanning several leap boundaries round-trips.
  const TimePoint start = *ChrononFromDate({1999, 12, 20});
  const TimePoint end = *ChrononFromDate({2001, 1, 10});
  for (TimePoint t = start; t <= end; ++t) {
    const CivilDate d = DateFromChronon(t);
    auto back = ChrononFromDate(d);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, t) << FormatDate(t);
  }
}

TEST(CalendarTest, RoundTripRandomWide) {
  Rng rng(9);
  for (int i = 0; i < 2000; ++i) {
    const TimePoint t = rng.Uniform(-1000000, 1000000);  // ±~2700 years
    auto back = ChrononFromDate(DateFromChronon(t));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, t);
  }
}

TEST(CalendarTest, ConsecutiveChrononsAreConsecutiveDates) {
  Rng rng(10);
  for (int i = 0; i < 500; ++i) {
    const TimePoint t = rng.Uniform(-100000, 100000);
    const CivilDate a = DateFromChronon(t);
    const CivilDate b = DateFromChronon(t + 1);
    // b is a's successor: either next day in the month, or the 1st of the
    // next month/year.
    if (b.day != 1) {
      EXPECT_EQ(b.day, a.day + 1);
      EXPECT_EQ(b.month, a.month);
      EXPECT_EQ(b.year, a.year);
    } else if (b.month != 1) {
      EXPECT_EQ(b.month, a.month + 1);
      EXPECT_EQ(b.year, a.year);
    } else {
      EXPECT_EQ(b.year, a.year + 1);
      EXPECT_EQ(a.month, 12);
      EXPECT_EQ(a.day, 31);
    }
  }
}

TEST(CalendarTest, ParseAndFormat) {
  auto t = ParseDate("2001-05-17");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(FormatDate(*t), "2001-05-17");
  EXPECT_FALSE(ParseDate("not a date").ok());
  EXPECT_FALSE(ParseDate("2001-13-01").ok());
}

TEST(CalendarTest, DateSpanAndRendering) {
  auto span = DateSpan("2001-05-17", "2001-05-20");
  ASSERT_TRUE(span.ok());
  EXPECT_EQ(span->Cardinality(), 4u);
  EXPECT_FALSE(DateSpan("2001-05-20", "2001-05-17").ok());

  Lifespan l = span->Union(*DateSpan("2010-01-01", "2010-01-01"));
  EXPECT_EQ(FormatLifespanAsDates(l),
            "{[2001-05-17..2001-05-20],[2010-01-01]}");
  EXPECT_EQ(FormatLifespanAsDates(Lifespan::Empty()), "{}");
}

TEST(CalendarTest, LifespansWorkAtDateScale) {
  // An employment lifespan expressed in dates behaves like any lifespan.
  Lifespan employed = *DateSpan("2001-05-17", "2008-02-29");
  Lifespan rehired = *DateSpan("2015-01-05", "2020-12-31");
  Lifespan career = employed.Union(rehired);
  EXPECT_EQ(career.IntervalCount(), 2u);
  EXPECT_TRUE(career.Contains(*ParseDate("2003-07-04")));
  EXPECT_FALSE(career.Contains(*ParseDate("2012-06-01")));
}

}  // namespace
}  // namespace hrdm
