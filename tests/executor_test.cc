// End-to-end executor tests: HRQL queries against the domain workloads.

#include "query/executor.h"

#include <gtest/gtest.h>

#include "algebra/when.h"
#include "query/parser.h"
#include "util/random.h"
#include "workload/generators.h"

namespace hrdm::query {
namespace {

storage::Database PersonnelDb(uint64_t seed = 42) {
  Rng rng(seed);
  workload::PersonnelConfig config;
  config.num_employees = 40;
  auto emp = workload::MakePersonnel(&rng, config);
  EXPECT_TRUE(emp.ok());
  storage::Database db;
  EXPECT_TRUE(db.CreateRelation(emp->scheme()).ok());
  for (const Tuple& t : *emp) {
    EXPECT_TRUE(db.Insert("emp", t).ok());
  }
  return db;
}

TEST(ExecutorTest, BaseRelationLookup) {
  auto db = PersonnelDb();
  auto r = hrdm::query::Run("emp", db);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), (*db.Get("emp"))->size());
  EXPECT_FALSE(hrdm::query::Run("ghosts", db).ok());
}

TEST(ExecutorTest, SelectProjectPipeline) {
  auto db = PersonnelDb();
  auto r = hrdm::query::Run("project(select_if(emp, Salary >= 100000, exists), Name)", db);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->scheme()->arity(), 1u);
  // Every returned employee indeed earned >= 100000 at some chronon.
  auto check = hrdm::query::Run("select_if(emp, Salary >= 100000, exists)", db);
  ASSERT_TRUE(check.ok());
  EXPECT_EQ(r->size(), check->size());
}

TEST(ExecutorTest, MultiSortedWhenParameter) {
  auto db = PersonnelDb();
  // "restrict the database to the times when anyone was in dept0" — a
  // WHEN result feeding TIME-SLICE (Section 4.5).
  auto r = hrdm::query::Run(
      R"(timeslice(emp, when(select_when(emp, Dept = "dept0"))))", db);
  ASSERT_TRUE(r.ok());
  auto dept0_times = EvalLifespan(
      *ParseLsExpr(R"(when(select_when(emp, Dept = "dept0")))"),
      db);
  ASSERT_TRUE(dept0_times.ok());
  EXPECT_TRUE(dept0_times->ContainsAll(When(*r)));
}

TEST(ExecutorTest, SnapshotReduction) {
  auto db = PersonnelDb();
  // A single-chronon slice behaves like a classical table.
  auto r = hrdm::query::Run("timeslice(emp, {[50]})", db);
  ASSERT_TRUE(r.ok());
  for (const Tuple& t : *r) {
    EXPECT_EQ(t.lifespan(), Lifespan::Point(50));
  }
}

TEST(ExecutorTest, ErrorsPropagate) {
  auto db = PersonnelDb();
  EXPECT_FALSE(hrdm::query::Run("select_if(emp, Bonus = 1, exists)", db).ok());
  EXPECT_FALSE(hrdm::query::Run("dynslice(emp, Salary)", db).ok());
  EXPECT_FALSE(hrdm::query::Run("union(emp, project(emp, Name))", db).ok());
}

TEST(ExecutorTest, EnrollmentJoinScenario) {
  Rng rng(7);
  auto db = workload::MakeEnrollment(&rng, workload::EnrollmentConfig{});
  ASSERT_TRUE(db.ok());
  // Students and their enrollments, joined on SId equality over time.
  auto r = hrdm::query::Run("join(project(enroll, EId, CId), student, EId != SId)", *db);
  ASSERT_TRUE(r.ok());
  // Weak sanity: the join scheme concatenates both sides.
  EXPECT_EQ(r->scheme()->arity(), 4u);

  // Natural join via the shared SId attribute.
  auto nj = hrdm::query::Run("natjoin(enroll, student)", *db);
  ASSERT_TRUE(nj.ok());
  for (const Tuple& t : *nj) {
    // Every joined tuple's lifespan is inside both parents' lifespans.
    auto sid = (*t.value("SId")).ConstantValue();
    auto enroll_rel = *db->Get("student");
    auto idx = enroll_rel->FindByKey({sid});
    ASSERT_TRUE(idx.has_value());
    EXPECT_TRUE(
        enroll_rel->tuple(*idx).lifespan().ContainsAll(t.lifespan()));
  }
}

TEST(ExecutorTest, ObjectUnionAcrossTimeslices) {
  auto db = PersonnelDb();
  // Splitting a relation by time and object-unioning the parts restores
  // the original (at the model level): r = T_[0,49](r) ∪o T_[50,99](r).
  auto split = hrdm::query::Run(
      "ounion(timeslice(emp, {[0,49]}), timeslice(emp, {[50,99]}))", db);
  ASSERT_TRUE(split.ok()) << split.status().ToString();
  auto whole = hrdm::query::Run("timeslice(emp, {[0,99]})", db);
  ASSERT_TRUE(whole.ok());
  EXPECT_TRUE(split->EqualsAsSet(*whole));
}

TEST(ExecutorTest, StockMarketFigure6Queries) {
  Rng rng(9);
  auto stocks = workload::MakeStockMarket(&rng, workload::StockMarketConfig{});
  ASSERT_TRUE(stocks.ok());
  storage::Database db;
  ASSERT_TRUE(db.CreateRelation(stocks->scheme()).ok());
  for (const Tuple& t : *stocks) {
    ASSERT_TRUE(db.Insert("stocks", t).ok());
  }
  // DailyVolume is undefined during the Figure 6 gap [80,139]: selecting on
  // it there yields nothing.
  auto gap = hrdm::query::Run("timeslice(select_when(stocks, DailyVolume >= 0), {[100,120]})",
                 db);
  ASSERT_TRUE(gap.ok());
  EXPECT_TRUE(gap->empty());
  // But Price (linear interpolation) is defined throughout.
  auto price = hrdm::query::Run("timeslice(select_when(stocks, Price > 0.0), {[100,120]})",
                   db);
  ASSERT_TRUE(price.ok());
  EXPECT_EQ(price->size(), 50u);
}

}  // namespace
}  // namespace hrdm::query
