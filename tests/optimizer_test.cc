// Tests for the rewrite optimizer: every rule must preserve query answers
// (the Section 5 algebraic identities, verified operationally), plus a
// documented counterexample for the identity the paper overstates.

#include "query/optimizer.h"

#include <gtest/gtest.h>

#include "algebra/setops.h"
#include "algebra/timeslice.h"
#include "query/executor.h"
#include "query/parser.h"
#include "util/random.h"
#include "workload/generators.h"

namespace hrdm::query {
namespace {

/// A database with three merge-compatible random relations r0, r1, r2 (all
/// over Id/A0/A1 + time attribute Ref) with overlapping key spaces.
storage::Database RandomDb(uint64_t seed) {
  Rng rng(seed);
  storage::Database db;
  for (int i = 0; i < 3; ++i) {
    workload::RandomRelationConfig config;
    config.name = "r" + std::to_string(i);
    config.num_tuples = 10;
    config.num_value_attrs = 2;
    config.with_time_attribute = true;
    config.key_space = 14;  // overlapping keys across relations
    auto rel = workload::MakeRandomRelation(&rng, config);
    EXPECT_TRUE(rel.ok());
    EXPECT_TRUE(db.CreateRelation(rel->scheme()).ok());
    for (const Tuple& t : *rel) {
      EXPECT_TRUE(db.Insert(config.name, t).ok());
    }
  }
  return db;
}

void ExpectSameAnswer(const std::string& hrql, const storage::Database& db) {
  auto expr = ParseExpr(hrql);
  ASSERT_TRUE(expr.ok()) << hrql;
  OptimizerStats stats;
  ExprPtr optimized = Optimize(*expr, &stats);
  auto raw = Eval(*expr, db);
  auto opt = Eval(optimized, db);
  ASSERT_TRUE(raw.ok()) << hrql << ": " << raw.status().ToString();
  ASSERT_TRUE(opt.ok()) << optimized->ToString() << ": "
                        << opt.status().ToString();
  EXPECT_TRUE(raw->EqualsAsSet(*opt))
      << "query: " << hrql << "\nrewritten: " << optimized->ToString();
}

TEST(OptimizerTest, TimesliceFusion) {
  auto e = *ParseExpr("timeslice(timeslice(r0, {[0,30]}), {[20,50]})");
  OptimizerStats stats;
  ExprPtr o = Optimize(e, &stats);
  EXPECT_EQ(o->ToString(), "timeslice(r0, {[20,30]})");
  EXPECT_GE(stats.rules_applied, 1);
}

TEST(OptimizerTest, SelectWhenFusion) {
  auto e = *ParseExpr(
      "select_when(select_when(r0, A0 = 1), A1 = 2)");
  ExprPtr o = Optimize(e);
  EXPECT_EQ(o->ToString(), "select_when(r0, A0 = 1 AND A1 = 2)");
}

TEST(OptimizerTest, PushTimesliceBelowSelectWhen) {
  auto e = *ParseExpr("timeslice(select_when(r0, A0 = 1), {[0,9]})");
  ExprPtr o = Optimize(e);
  EXPECT_EQ(o->ToString(), "select_when(timeslice(r0, {[0,9]}), A0 = 1)");
}

TEST(OptimizerTest, DistributeOverUnion) {
  auto e = *ParseExpr("timeslice(union(r0, r1), {[0,9]})");
  ExprPtr o = Optimize(e);
  EXPECT_EQ(o->ToString(),
            "union(timeslice(r0, {[0,9]}), timeslice(r1, {[0,9]}))");

  auto s = *ParseExpr("select_when(union(r0, r1), A0 = 1)");
  ExprPtr so = Optimize(s);
  EXPECT_EQ(so->ToString(),
            "union(select_when(r0, A0 = 1), select_when(r1, A0 = 1))");
}

TEST(OptimizerTest, SelectIfDistributesOverAllSetOps) {
  for (const char* op : {"union", "intersect", "minus"}) {
    auto e = *ParseExpr("select_if(" + std::string(op) +
                        "(r0, r1), A0 = 1, exists, {[0,50]})");
    ExprPtr o = Optimize(e);
    EXPECT_EQ(o->ToString(),
              std::string(op) +
                  "(select_if(r0, A0 = 1, exists, {[0,50]}), "
                  "select_if(r1, A0 = 1, exists, {[0,50]}))");
  }
  // Without an explicit window the rewrite must NOT fire (the implicit
  // window LS(r) differs per operand).
  auto e = *ParseExpr("select_if(union(r0, r1), A0 = 1, exists)");
  ExprPtr o = Optimize(e);
  EXPECT_EQ(o->kind, ExprKind::kSelectIf);
}

TEST(OptimizerTest, ProjectFusion) {
  auto e = *ParseExpr("project(project(r0, Id, A0, A1), Id)");
  ExprPtr o = Optimize(e);
  EXPECT_EQ(o->ToString(), "project(r0, Id)");
}

TEST(OptimizerTest, LifespanLiteralFolding) {
  auto e = *ParseExpr(
      "timeslice(r0, lunion(lintersect({[0,20]}, {[10,40]}), {[50]}))");
  ExprPtr o = Optimize(e);
  EXPECT_EQ(o->ToString(), "timeslice(r0, {[10,20],[50]})");
}

TEST(OptimizerTest, FixpointTerminates) {
  // Deeply nested rewritable tree converges within the pass bound.
  std::string q = "r0";
  for (int i = 0; i < 6; ++i) {
    q = "timeslice(select_when(" + q + ", A0 = " + std::to_string(i) +
        "), {[0," + std::to_string(50 - i) + "]})";
  }
  auto e = ParseExpr(q);
  ASSERT_TRUE(e.ok());
  OptimizerStats stats;
  ExprPtr o = Optimize(*e, &stats);
  EXPECT_LE(stats.passes, 16);
  // After optimization all slices are fused below all selects.
  EXPECT_EQ(o->kind, ExprKind::kSelectWhen);
}

// --- Answer preservation (the operational Section 5 identities) ------------

class OptimizerEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OptimizerEquivalenceTest, RewritesPreserveAnswers) {
  storage::Database db = RandomDb(GetParam());
  const std::vector<std::string> queries = {
      "timeslice(timeslice(r0, {[0,30]}), {[20,50]})",
      "timeslice(select_when(r0, A0 <= 50), {[5,25]})",
      "select_when(select_when(r0, A0 <= 70), A1 >= 10)",
      "timeslice(union(r0, r1), {[0,25]})",
      "select_when(union(r0, r1), A0 <= 40)",
      "select_if(union(r0, r1), A0 <= 40, exists, {[0,59]})",
      "select_if(intersect(r0, r1), A0 <= 40, forall, {[0,59]})",
      "select_if(minus(r0, r1), A0 <= 40, exists, {[0,59]})",
      "project(project(r0, Id, A0, A1), Id, A0)",
      "timeslice(select_when(union(r0, r1), A0 <= 30), "
      "lintersect({[0,40]}, {[10,59]}))",
      "timeslice(ounion(r0, r1), {[0,30]})",
      "select_when(ointersect(r0, r1), A0 <= 80)",
      "timeslice(r2, when(select_when(r0, A0 <= 20)))",
      "join(project(r0, Id, A0), project(r1, Id2, B0), A0 <= B0)",
  };
  for (const std::string& q : queries) {
    if (q.find("Id2") != std::string::npos) continue;  // needs renaming
    ExpectSameAnswer(q, db);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizerEquivalenceTest,
                         ::testing::Values(1u, 2u, 3u, 44u, 1234u));

// --- The identity the paper overstates ---------------------------------------

TEST(OptimizerTest, TimesliceDoesNotDistributeOverDifference) {
  // Two tuples (same key space) that differ overall but become identical
  // after slicing: distribution over '−' would change the answer, so the
  // optimizer must not apply it. This refines the paper's blanket claim
  // that TIME-SLICE distributes over "the binary set-theoretic operators".
  const Lifespan full = Span(0, 19);
  auto scheme = *RelationScheme::Make(
      "d",
      {{"Id", DomainType::kString, full, InterpolationKind::kDiscrete},
       {"X", DomainType::kInt, full, InterpolationKind::kDiscrete}},
      {"Id"});
  Relation r1(scheme), r2(scheme);
  {
    Tuple::Builder b(scheme, Span(0, 19));  // long history
    b.SetConstant("Id", Value::String("a"));
    b.SetConstant("X", Value::Int(1));
    ASSERT_TRUE(r1.Insert(*std::move(b).Build()).ok());
  }
  {
    Tuple::Builder b(scheme, Span(0, 9));  // short history, same values
    b.SetConstant("Id", Value::String("a"));
    b.SetConstant("X", Value::Int(1));
    ASSERT_TRUE(r2.Insert(*std::move(b).Build()).ok());
  }
  const Lifespan window = Span(0, 9);
  // LHS: slice(r1 − r2): r1's tuple ∉ r2 (different lifespan), survives,
  // then sliced to [0,9].
  auto lhs = *TimeSlice(*Difference(r1, r2), window);
  EXPECT_EQ(lhs.size(), 1u);
  // RHS: slice(r1) − slice(r2): after slicing both tuples are identical,
  // so the difference is empty.
  auto rhs = *Difference(*TimeSlice(r1, window), *TimeSlice(r2, window));
  EXPECT_TRUE(rhs.empty());
  EXPECT_FALSE(lhs.EqualsAsSet(rhs));

  // And the optimizer indeed leaves timeslice-over-minus alone.
  auto e = *ParseExpr("timeslice(minus(r0, r1), {[0,9]})");
  ExprPtr o = Optimize(e);
  EXPECT_EQ(o->kind, ExprKind::kTimeSlice);
}

}  // namespace
}  // namespace hrdm::query
