// Tests for TemporalValue — the partial functions T -> D of Section 3.

#include "core/temporal_value.h"

#include <gtest/gtest.h>

#include <map>

#include "util/random.h"

namespace hrdm {
namespace {

Result<TemporalValue> TV(std::vector<Segment> segs) {
  return TemporalValue::FromSegments(std::move(segs));
}

TEST(TemporalValueTest, EmptyFunction) {
  TemporalValue f;
  EXPECT_TRUE(f.empty());
  EXPECT_TRUE(f.domain().empty());
  EXPECT_TRUE(f.ValueAt(0).absent());
  EXPECT_TRUE(f.IsConstant());
  EXPECT_FALSE(f.type().has_value());
}

TEST(TemporalValueTest, ConstantIsCD) {
  auto f = TemporalValue::Constant(
      Lifespan::FromIntervals({Interval(0, 4), Interval(8, 9)}),
      Value::String("Codd"));
  ASSERT_TRUE(f.ok());
  EXPECT_TRUE(f->IsConstant());
  EXPECT_EQ(f->ConstantValue(), Value::String("Codd"));
  EXPECT_EQ(f->ValueAt(2), Value::String("Codd"));
  EXPECT_EQ(f->ValueAt(8), Value::String("Codd"));
  EXPECT_TRUE(f->ValueAt(6).absent());
}

TEST(TemporalValueTest, ConstantRejectsAbsent) {
  EXPECT_FALSE(TemporalValue::Constant(Span(0, 3), Value()).ok());
}

TEST(TemporalValueTest, FromSegmentsSortsAndMerges) {
  auto f = TV({{Interval(5, 9), Value::Int(2)},
               {Interval(0, 4), Value::Int(2)}});
  ASSERT_TRUE(f.ok());
  // Adjacent equal-valued segments merge into one.
  EXPECT_EQ(f->segments().size(), 1u);
  EXPECT_EQ(f->segments()[0].interval, Interval(0, 9));
}

TEST(TemporalValueTest, FromSegmentsKeepsDistinctAdjacents) {
  auto f = TV({{Interval(0, 4), Value::Int(1)},
               {Interval(5, 9), Value::Int(2)}});
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->segments().size(), 2u);
}

TEST(TemporalValueTest, FromSegmentsRejectsOverlap) {
  auto f = TV({{Interval(0, 5), Value::Int(1)},
               {Interval(5, 9), Value::Int(2)}});
  EXPECT_FALSE(f.ok());
  EXPECT_EQ(f.status().code(), StatusCode::kInvalidArgument);
}

TEST(TemporalValueTest, FromSegmentsRejectsMixedTypes) {
  auto f = TV({{Interval(0, 4), Value::Int(1)},
               {Interval(6, 9), Value::String("x")}});
  EXPECT_FALSE(f.ok());
  EXPECT_EQ(f.status().code(), StatusCode::kTypeError);
}

TEST(TemporalValueTest, ValueAtBoundaries) {
  auto f = *TV({{Interval(2, 5), Value::Int(10)},
                {Interval(8, 8), Value::Int(20)}});
  EXPECT_TRUE(f.ValueAt(1).absent());
  EXPECT_EQ(f.ValueAt(2), Value::Int(10));
  EXPECT_EQ(f.ValueAt(5), Value::Int(10));
  EXPECT_TRUE(f.ValueAt(6).absent());
  EXPECT_EQ(f.ValueAt(8), Value::Int(20));
  EXPECT_TRUE(f.ValueAt(9).absent());
}

TEST(TemporalValueTest, RestrictClipsSegments) {
  auto f = *TV({{Interval(0, 9), Value::Int(1)}});
  TemporalValue g = f.Restrict(
      Lifespan::FromIntervals({Interval(2, 3), Interval(7, 12)}));
  EXPECT_EQ(g.domain().ToString(), "{[2,3],[7,9]}");
  EXPECT_EQ(g.ValueAt(7), Value::Int(1));
  EXPECT_TRUE(g.ValueAt(5).absent());
}

TEST(TemporalValueTest, RestrictToEmptyYieldsEmpty) {
  auto f = *TV({{Interval(0, 9), Value::Int(1)}});
  EXPECT_TRUE(f.Restrict(Lifespan::Empty()).empty());
}

TEST(TemporalValueTest, ConsistencyAndUnion) {
  auto f = *TV({{Interval(0, 5), Value::Int(1)}});
  auto g = *TV({{Interval(3, 9), Value::Int(1)}});
  auto h = *TV({{Interval(3, 9), Value::Int(2)}});
  EXPECT_TRUE(f.ConsistentWith(g));
  EXPECT_FALSE(f.ConsistentWith(h));  // contradiction on [3,5]

  auto u = f.UnionWith(g);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->domain().ToString(), "{[0,9]}");
  EXPECT_EQ(u->segments().size(), 1u);  // same value merges

  EXPECT_FALSE(f.UnionWith(h).ok());
}

TEST(TemporalValueTest, UnionWithDisjointKeepsBoth) {
  auto f = *TV({{Interval(0, 2), Value::Int(1)}});
  auto g = *TV({{Interval(5, 7), Value::Int(9)}});
  auto u = f.UnionWith(g);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->ValueAt(1), Value::Int(1));
  EXPECT_EQ(u->ValueAt(6), Value::Int(9));
  EXPECT_TRUE(u->ValueAt(3).absent());
}

TEST(TemporalValueTest, AgreementWith) {
  auto f = *TV({{Interval(0, 5), Value::Int(1)},
                {Interval(6, 9), Value::Int(2)}});
  auto g = *TV({{Interval(3, 7), Value::Int(1)}});
  // Both defined on [3,7]; equal (value 1) only on [3,5].
  EXPECT_EQ(f.AgreementWith(g).ToString(), "{[3,5]}");
  EXPECT_EQ(g.AgreementWith(f).ToString(), "{[3,5]}");
}

TEST(TemporalValueTest, Image) {
  auto f = *TV({{Interval(0, 2), Value::Int(5)},
                {Interval(4, 6), Value::Int(3)},
                {Interval(8, 9), Value::Int(5)}});
  auto img = f.Image();
  ASSERT_EQ(img.size(), 2u);
  EXPECT_EQ(img[0], Value::Int(3));
  EXPECT_EQ(img[1], Value::Int(5));
}

TEST(TemporalValueTest, TimeImageForTTAttributes) {
  auto f = *TV({{Interval(0, 2), Value::Time(10)},
                {Interval(3, 5), Value::Time(11)},
                {Interval(7, 9), Value::Time(30)}});
  auto img = f.TimeImage();
  ASSERT_TRUE(img.ok());
  EXPECT_EQ(img->ToString(), "{[10,11],[30]}");
}

TEST(TemporalValueTest, TimeImageRejectsNonTime) {
  auto f = *TV({{Interval(0, 2), Value::Int(10)}});
  auto img = f.TimeImage();
  EXPECT_FALSE(img.ok());
  EXPECT_EQ(img.status().code(), StatusCode::kTypeError);
}

TEST(TemporalValueTest, TimesWhere) {
  auto f = *TV({{Interval(0, 3), Value::Int(10)},
                {Interval(4, 7), Value::Int(30)},
                {Interval(8, 9), Value::Int(10)}});
  auto where = f.TimesWhere(CompareOp::kEq, Value::Int(10));
  ASSERT_TRUE(where.ok());
  EXPECT_EQ(where->ToString(), "{[0,3],[8,9]}");
  auto ge = f.TimesWhere(CompareOp::kGe, Value::Int(20));
  ASSERT_TRUE(ge.ok());
  EXPECT_EQ(ge->ToString(), "{[4,7]}");
}

TEST(TemporalValueTest, TimesWhereMatches) {
  auto f = *TV({{Interval(0, 5), Value::Int(1)},
                {Interval(6, 9), Value::Int(5)}});
  auto g = *TV({{Interval(2, 8), Value::Int(3)}});
  auto lt = f.TimesWhereMatches(CompareOp::kLt, g);
  ASSERT_TRUE(lt.ok());
  EXPECT_EQ(lt->ToString(), "{[2,5]}");  // 1 < 3 on the overlap
  auto gt = f.TimesWhereMatches(CompareOp::kGt, g);
  ASSERT_TRUE(gt.ok());
  EXPECT_EQ(gt->ToString(), "{[6,8]}");  // 5 > 3
}

// ---------------------------------------------------------------------------
// Property tests against a reference std::map<TimePoint, Value>.
// ---------------------------------------------------------------------------

class TemporalValuePropertyTest : public ::testing::TestWithParam<uint64_t> {
};

TemporalValue RandomTV(Rng* rng, TimePoint hi = 40) {
  std::vector<Segment> segs;
  TimePoint t = rng->Uniform(0, 5);
  while (t < hi && rng->Chance(0.8)) {
    TimePoint e = t + rng->Uniform(0, 6);
    segs.push_back(Segment{Interval(t, e), Value::Int(rng->Uniform(0, 4))});
    t = e + 1 + rng->Uniform(0, 4);
  }
  return *TemporalValue::FromSegments(std::move(segs));
}

std::map<TimePoint, Value> AsMap(const TemporalValue& f) {
  std::map<TimePoint, Value> m;
  for (const Segment& s : f.segments()) {
    for (TimePoint t = s.interval.begin; t <= s.interval.end; ++t) {
      m[t] = s.value;
    }
  }
  return m;
}

TEST_P(TemporalValuePropertyTest, RestrictMatchesReference) {
  Rng rng(GetParam());
  for (int i = 0; i < 40; ++i) {
    TemporalValue f = RandomTV(&rng);
    Lifespan l = Lifespan::FromIntervals(
        {Interval(rng.Uniform(0, 20), rng.Uniform(20, 45)),
         Interval(rng.Uniform(0, 10), rng.Uniform(10, 15))});
    auto ref = AsMap(f);
    TemporalValue g = f.Restrict(l);
    for (TimePoint t = -2; t < 50; ++t) {
      Value expected =
          l.Contains(t) && ref.count(t) ? ref[t] : Value();
      EXPECT_EQ(g.ValueAt(t), expected) << "t=" << t;
    }
  }
}

TEST_P(TemporalValuePropertyTest, UnionMatchesReferenceWhenConsistent) {
  Rng rng(GetParam() * 13 + 1);
  for (int i = 0; i < 40; ++i) {
    TemporalValue f = RandomTV(&rng);
    TemporalValue g = RandomTV(&rng);
    auto mf = AsMap(f), mg = AsMap(g);
    bool consistent = true;
    for (const auto& [t, v] : mf) {
      if (mg.count(t) && !(mg[t] == v)) {
        consistent = false;
        break;
      }
    }
    EXPECT_EQ(f.ConsistentWith(g), consistent);
    auto u = f.UnionWith(g);
    EXPECT_EQ(u.ok(), consistent);
    if (consistent) {
      for (TimePoint t = 0; t < 50; ++t) {
        Value expected = mf.count(t) ? mf[t] : (mg.count(t) ? mg[t] : Value());
        EXPECT_EQ(u->ValueAt(t), expected);
      }
    }
  }
}

TEST_P(TemporalValuePropertyTest, CanonicalFormInvariant) {
  Rng rng(GetParam() * 29 + 5);
  for (int i = 0; i < 40; ++i) {
    TemporalValue f = RandomTV(&rng);
    const auto& segs = f.segments();
    for (size_t k = 0; k < segs.size(); ++k) {
      EXPECT_TRUE(segs[k].interval.valid());
      if (k > 0) {
        EXPECT_GT(segs[k].interval.begin, segs[k - 1].interval.end);
        if (segs[k - 1].interval.adjacent(segs[k].interval)) {
          EXPECT_NE(segs[k - 1].value, segs[k].value);
        }
      }
    }
    // domain() is consistent with the segments.
    uint64_t n = 0;
    for (const Segment& s : segs) n += s.interval.length();
    EXPECT_EQ(f.domain().Cardinality(), n);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TemporalValuePropertyTest,
                         ::testing::Values(1u, 7u, 23u, 77u, 424242u));

}  // namespace
}  // namespace hrdm
