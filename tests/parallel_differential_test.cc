// Differential suite for morsel-parallel execution: for random databases,
// plans lowered with PlanOptions::parallelism ∈ {2, 4, 8} (force_parallel,
// so the cardinality threshold cannot quietly serialize them) must produce
// results identical to
//  * the single-thread plan (parallelism = 1, the exact legacy path),
//  * the whole-relation algebra kernels,
//  * the materializing interpreter,
// over scans, restrictions, hash/natural joins and grouped aggregates.
// Identity is asserted both as set equality and as exact rendered output:
// every parallel merge happens in morsel order, so the parallel stream is
// deterministic and tuple-for-tuple equal to the serial one, not merely
// set-equal. Every (hrql, parallelism) execution is additionally swept
// over the batch-size axis (tests/differential_util.h), so batching and
// parallelism are proven independent. Plus directed checks of the
// planner's parallelism decisions (threshold fallback, PlanStats
// morsel/worker counters).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "algebra/aggregate.h"
#include "algebra/join.h"
#include "differential_util.h"
#include "query/executor.h"
#include "query/parser.h"
#include "query/plan.h"
#include "test_seeds.h"
#include "util/random.h"
#include "workload/generators.h"

namespace hrdm::query {
namespace {

constexpr char kSeedEnv[] = "HRDM_PARALLEL_FUZZ_SEEDS";

/// Drains `hrql` through a plan with the given parallelism (bypassing the
/// cardinality threshold, so small fuzz relations really run parallel),
/// swept over the batch-size axis.
Result<Relation> RunAtThreads(const storage::Database& db,
                              const std::string& hrql, size_t threads) {
  PlanOptions options;
  options.parallelism = threads;
  options.force_parallel = threads > 1;
  return hrdm::testing::RunBatchInvariant(db, hrql, options);
}

/// Runs `hrql` serially and at 2/4/8 workers, asserting the parallel
/// results are tuple-for-tuple identical to the serial one (and to
/// `reference` / the materializing interpreter).
void ExpectParallelMatchesSerial(const storage::Database& db,
                                 const std::string& hrql,
                                 const Relation* reference) {
  auto serial = RunAtThreads(db, hrql, 1);
  ASSERT_TRUE(serial.ok()) << hrql << ": " << serial.status().ToString();
  for (size_t threads : {2u, 4u, 8u}) {
    SCOPED_TRACE(hrql + " @ " + std::to_string(threads) + " threads");
    auto parallel = RunAtThreads(db, hrql, threads);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    EXPECT_TRUE(parallel->EqualsAsSet(*serial))
        << "parallel:\n"
        << parallel->ToString() << "serial:\n"
        << serial->ToString();
    // Morsel-order merges make the parallel plan deterministic and
    // order-identical to serial, not merely set-equal.
    EXPECT_EQ(parallel->ToString(), serial->ToString());
  }
  hrdm::testing::ExpectMatchesOracle(db, hrql, *serial, reference);
}

/// The shared four-relation fuzz database at this suite's historical
/// tuple counts (see tests/differential_util.h for the shape).
storage::Database RandomParallelDb(uint64_t seed) {
  return hrdm::testing::RandomJoinStyleDb(
      seed, {.ra_tuples = 12, .na_tuples = 9, .nb_tuples = 7});
}

TEST(ParallelDifferentialTest, RandomDatabases) {
  // ≥100 random databases; override with HRDM_PARALLEL_FUZZ_SEEDS=....
  for (uint64_t seed : hrdm::testing::SeedsFromEnv(
           kSeedEnv, hrdm::testing::DefaultFuzzSeeds())) {
    SCOPED_TRACE(hrdm::testing::SeedTrace(kSeedEnv, seed));
    auto db = RandomParallelDb(seed);
    const Relation& ra = **db.Get("ra");
    const Relation& rb = **db.Get("rb");
    const Relation& na = **db.Get("na");
    const Relation& nb = **db.Get("nb");

    // Parallel scan leaf, bare and under streaming restrictions.
    ExpectParallelMatchesSerial(db, "ra", &ra);
    ExpectParallelMatchesSerial(db, "select_when(ra, A0 <= 50)", nullptr);
    ExpectParallelMatchesSerial(db, "timeslice(ra, {[5, 40]})", nullptr);

    // Parallel hash equi-join (build partitioning + parallel probe).
    auto equi = EquiJoin(ra, "A0", rb, "B0");
    ASSERT_TRUE(equi.ok());
    ExpectParallelMatchesSerial(db, "join(ra, rb, A0 = B0)", &*equi);

    // Natural join with occasionally-varying shared attribute D.
    auto nat = NaturalJoin(na, nb);
    ASSERT_TRUE(nat.ok());
    ExpectParallelMatchesSerial(db, "natjoin(na, nb)", &*nat);

    // Parallel aggregate fold: grouped count/sum (varying D keys included)
    // and an ungrouped avg.
    auto grouped = Aggregate(na, {AggregateFn::kCount, "", {"D"}});
    ASSERT_TRUE(grouped.ok());
    ExpectParallelMatchesSerial(db, "aggregate(na, count by D)", &*grouped);
    ExpectParallelMatchesSerial(db, "aggregate(na, sum X by D)", nullptr);
    ExpectParallelMatchesSerial(db, "aggregate(ra, avg A0)", nullptr);

    // Composed pipeline: parallel scan → join → aggregate in one plan.
    ExpectParallelMatchesSerial(
        db, "aggregate(natjoin(na, nb), count by D)", nullptr);
  }
}

// ---------------------------------------------------------------------------
// Directed planner/stats checks.
// ---------------------------------------------------------------------------

TEST(ParallelPlanTest, ThresholdKeepsSmallPlansSerial) {
  // Without force_parallel, a relation far below kParallelMinTuples stays
  // serial no matter how many workers are requested.
  auto db = RandomParallelDb(7);
  auto expr = ParseExpr("join(ra, rb, A0 = B0)");
  ASSERT_TRUE(expr.ok());
  PlanOptions options;
  options.parallelism = 8;
  auto plan = Plan::Lower(*expr, DatabaseResolver(db), options);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(plan->Drain().ok());
  EXPECT_EQ(plan->stats().parallelism, 1u);
  EXPECT_EQ(plan->stats().parallel_operators, 0u);
  EXPECT_EQ(plan->stats().morsels_dispatched, 0u);
  EXPECT_TRUE(plan->stats().worker_tuples.empty());
}

TEST(ParallelPlanTest, ForcedParallelPlanRecordsMorselTraffic) {
  auto db = RandomParallelDb(7);
  auto expr = ParseExpr("aggregate(natjoin(na, nb), count by D)");
  ASSERT_TRUE(expr.ok());
  PlanOptions options;
  options.parallelism = 4;
  options.force_parallel = true;
  auto plan = Plan::Lower(*expr, DatabaseResolver(db), options);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(plan->Drain().ok());
  const PlanStats& stats = plan->stats();
  EXPECT_EQ(stats.parallelism, 4u);
  // Two scan leaves, the hash join and the aggregate all ran parallel
  // phases (the natural join has a shared attribute, so the chooser picks
  // hash for it on these schemes).
  EXPECT_GE(stats.parallel_operators, 3u);
  EXPECT_GT(stats.morsels_dispatched, 0u);
  EXPECT_GT(stats.partitions_merged, 0u);
  // Every processed tuple is attributed to some worker.
  size_t worker_sum = 0;
  for (size_t n : stats.worker_tuples) worker_sum += n;
  EXPECT_GT(worker_sum, 0u);
}

TEST(ParallelPlanTest, ExplicitSingleThreadMatchesDefaultSerialPlan) {
  // parallelism = 1 is the exact legacy path: identical output and
  // identical serial counters to an options-free lowering.
  auto db = RandomParallelDb(11);
  auto expr = ParseExpr("join(ra, rb, A0 = B0)");
  ASSERT_TRUE(expr.ok());
  auto legacy = Plan::Lower(*expr, DatabaseResolver(db));
  ASSERT_TRUE(legacy.ok());
  auto legacy_out = legacy->Drain();
  ASSERT_TRUE(legacy_out.ok());
  PlanOptions options;
  options.parallelism = 1;
  auto single = Plan::Lower(*expr, DatabaseResolver(db), options);
  ASSERT_TRUE(single.ok());
  auto single_out = single->Drain();
  ASSERT_TRUE(single_out.ok());
  EXPECT_EQ(single_out->ToString(), legacy_out->ToString());
  EXPECT_EQ(single->stats().join_pairs_tested,
            legacy->stats().join_pairs_tested);
  EXPECT_EQ(single->stats().peak_buffered, legacy->stats().peak_buffered);
  EXPECT_EQ(single->stats().parallelism, 1u);
  EXPECT_EQ(single->stats().morsels_dispatched, 0u);
}

}  // namespace
}  // namespace hrdm::query
