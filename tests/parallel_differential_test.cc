// Differential suite for morsel-parallel execution: for random databases,
// plans lowered with PlanOptions::parallelism ∈ {2, 4, 8} (force_parallel,
// so the cardinality threshold cannot quietly serialize them) must produce
// results identical to
//  * the single-thread plan (parallelism = 1, the exact legacy path),
//  * the whole-relation algebra kernels,
//  * the materializing interpreter,
// over scans, restrictions, hash/natural joins and grouped aggregates.
// Identity is asserted both as set equality and as exact rendered output:
// every parallel merge happens in morsel order, so the parallel stream is
// deterministic and tuple-for-tuple equal to the serial one, not merely
// set-equal. Plus directed checks of the planner's parallelism decisions
// (threshold fallback, PlanStats morsel/worker counters).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "algebra/aggregate.h"
#include "algebra/join.h"
#include "query/executor.h"
#include "query/parser.h"
#include "query/plan.h"
#include "test_seeds.h"
#include "util/random.h"
#include "workload/generators.h"

namespace hrdm::query {
namespace {

constexpr char kSeedEnv[] = "HRDM_PARALLEL_FUZZ_SEEDS";

/// Drains `hrql` through a plan with the given parallelism (bypassing the
/// cardinality threshold, so small fuzz relations really run parallel).
Result<Relation> RunAtThreads(const storage::Database& db,
                              const std::string& hrql, size_t threads) {
  HRDM_ASSIGN_OR_RETURN(ExprPtr expr, ParseExpr(hrql));
  PlanOptions options;
  options.parallelism = threads;
  options.force_parallel = threads > 1;
  HRDM_ASSIGN_OR_RETURN(Plan plan,
                        Plan::Lower(expr, DatabaseResolver(db), options));
  return plan.Drain();
}

/// Runs `hrql` serially and at 2/4/8 workers, asserting the parallel
/// results are tuple-for-tuple identical to the serial one (and to
/// `reference` / the materializing interpreter).
void ExpectParallelMatchesSerial(const storage::Database& db,
                                 const std::string& hrql,
                                 const Relation* reference) {
  auto serial = RunAtThreads(db, hrql, 1);
  ASSERT_TRUE(serial.ok()) << hrql << ": " << serial.status().ToString();
  for (size_t threads : {2u, 4u, 8u}) {
    SCOPED_TRACE(hrql + " @ " + std::to_string(threads) + " threads");
    auto parallel = RunAtThreads(db, hrql, threads);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    EXPECT_TRUE(parallel->EqualsAsSet(*serial))
        << "parallel:\n"
        << parallel->ToString() << "serial:\n"
        << serial->ToString();
    // Morsel-order merges make the parallel plan deterministic and
    // order-identical to serial, not merely set-equal.
    EXPECT_EQ(parallel->ToString(), serial->ToString());
  }
  auto expr = ParseExpr(hrql);
  ASSERT_TRUE(expr.ok());
  auto materialized = EvalMaterializing(*expr, db);
  ASSERT_TRUE(materialized.ok()) << hrql;
  EXPECT_TRUE(materialized->EqualsAsSet(*serial)) << hrql;
  if (reference != nullptr) {
    EXPECT_TRUE(reference->EqualsAsSet(*serial))
        << hrql << "\nwhole-relation API:\n"
        << reference->ToString() << "plan:\n"
        << serial->ToString();
  }
}

/// A random database exercising every parallel operator family:
///  * `ra(Id*, A0, Ref)` — scan + restriction input, time-valued Ref;
///  * `rb(Id2*, B0)` — equi-join partner with overlapping value space;
///  * `na(NId*, D, X)` — GROUP-BY D aggregate input and natural-join side
///    (some D values varying mid-lifespan: digest fallback paths under
///    parallel partitioning too).
storage::Database RandomParallelDb(uint64_t seed) {
  Rng rng(seed);
  storage::Database db;
  const TimePoint horizon = 60;
  const Lifespan full = Span(0, horizon - 1);

  workload::RandomRelationConfig ca;
  ca.name = "ra";
  ca.num_tuples = 12;
  ca.num_value_attrs = 1;
  ca.with_time_attribute = true;
  ca.key_prefix = "x";
  auto ra = *workload::MakeRandomRelation(&rng, ca);
  EXPECT_TRUE(db.CreateRelation(ra.scheme()).ok());
  for (const Tuple& t : ra) EXPECT_TRUE(db.Insert("ra", t).ok());

  auto rb_scheme = *RelationScheme::Make(
      "rb",
      {{"Id2", DomainType::kString, full, InterpolationKind::kDiscrete},
       {"B0", DomainType::kInt, full, InterpolationKind::kStepwise}},
      {"Id2"});
  EXPECT_TRUE(db.CreateRelation(rb_scheme).ok());
  workload::RandomRelationConfig cb = ca;
  cb.name = "rb";
  cb.key_prefix = "y";
  cb.with_time_attribute = false;
  auto src = *workload::MakeRandomRelation(&rng, cb);
  for (const Tuple& t : src) {
    std::vector<TemporalValue> vals = {t.value(0), t.value(1)};
    EXPECT_TRUE(
        db.Insert("rb", Tuple::FromParts(rb_scheme, t.lifespan(), vals))
            .ok());
  }

  auto na_scheme = *RelationScheme::Make(
      "na",
      {{"NId", DomainType::kString, full, InterpolationKind::kDiscrete},
       {"D", DomainType::kInt, full, InterpolationKind::kStepwise},
       {"X", DomainType::kInt, full, InterpolationKind::kStepwise}},
      {"NId"});
  auto nb_scheme = *RelationScheme::Make(
      "nb",
      {{"MId", DomainType::kString, full, InterpolationKind::kDiscrete},
       {"D", DomainType::kInt, full, InterpolationKind::kStepwise},
       {"Y", DomainType::kInt, full, InterpolationKind::kStepwise}},
      {"MId"});
  EXPECT_TRUE(db.CreateRelation(na_scheme).ok());
  EXPECT_TRUE(db.CreateRelation(nb_scheme).ok());
  auto fill = [&](const char* rel, const SchemePtr& scheme, const char* key,
                  const char* val, int n) {
    for (int i = 0; i < n; ++i) {
      const TimePoint b = rng.Uniform(0, horizon - 10);
      const TimePoint e = std::min<TimePoint>(b + rng.Uniform(3, 25),
                                              horizon - 1);
      Tuple::Builder tb(scheme, Span(b, e));
      std::string id(key);
      id += std::to_string(i);
      tb.SetConstant(scheme->attribute(0).name, Value::String(std::move(id)));
      if (rng.Chance(0.3)) {
        // A grouping/join key that changes value mid-lifespan: the digest
        // fallback and the per-chronon grouping fallback must survive the
        // parallel partitioning unchanged.
        const TimePoint mid = b + (e - b) / 2;
        std::vector<Segment> segs;
        segs.push_back({Interval(b, mid), Value::Int(rng.Uniform(0, 4))});
        if (mid + 1 <= e) {
          segs.push_back(
              {Interval(mid + 1, e), Value::Int(rng.Uniform(0, 4))});
        }
        tb.Set("D", *TemporalValue::FromSegments(std::move(segs)));
      } else {
        tb.SetConstant("D", Value::Int(rng.Uniform(0, 4)));
      }
      tb.SetConstant(val, Value::Int(rng.Uniform(0, 99)));
      EXPECT_TRUE(db.Insert(rel, *std::move(tb).Build()).ok());
    }
  };
  fill("na", na_scheme, "n", "X", 9);
  fill("nb", nb_scheme, "m", "Y", 7);
  return db;
}

TEST(ParallelDifferentialTest, RandomDatabases) {
  // ≥100 random databases; override with HRDM_PARALLEL_FUZZ_SEEDS=....
  std::vector<uint64_t> defaults(100);
  for (size_t i = 0; i < defaults.size(); ++i) defaults[i] = i + 1;
  for (uint64_t seed : hrdm::testing::SeedsFromEnv(kSeedEnv, defaults)) {
    SCOPED_TRACE(hrdm::testing::SeedTrace(kSeedEnv, seed));
    auto db = RandomParallelDb(seed);
    const Relation& ra = **db.Get("ra");
    const Relation& rb = **db.Get("rb");
    const Relation& na = **db.Get("na");
    const Relation& nb = **db.Get("nb");

    // Parallel scan leaf, bare and under streaming restrictions.
    ExpectParallelMatchesSerial(db, "ra", &ra);
    ExpectParallelMatchesSerial(db, "select_when(ra, A0 <= 50)", nullptr);
    ExpectParallelMatchesSerial(db, "timeslice(ra, {[5, 40]})", nullptr);

    // Parallel hash equi-join (build partitioning + parallel probe).
    auto equi = EquiJoin(ra, "A0", rb, "B0");
    ASSERT_TRUE(equi.ok());
    ExpectParallelMatchesSerial(db, "join(ra, rb, A0 = B0)", &*equi);

    // Natural join with occasionally-varying shared attribute D.
    auto nat = NaturalJoin(na, nb);
    ASSERT_TRUE(nat.ok());
    ExpectParallelMatchesSerial(db, "natjoin(na, nb)", &*nat);

    // Parallel aggregate fold: grouped count/sum (varying D keys included)
    // and an ungrouped avg.
    auto grouped = Aggregate(na, {AggregateFn::kCount, "", {"D"}});
    ASSERT_TRUE(grouped.ok());
    ExpectParallelMatchesSerial(db, "aggregate(na, count by D)", &*grouped);
    ExpectParallelMatchesSerial(db, "aggregate(na, sum X by D)", nullptr);
    ExpectParallelMatchesSerial(db, "aggregate(ra, avg A0)", nullptr);

    // Composed pipeline: parallel scan → join → aggregate in one plan.
    ExpectParallelMatchesSerial(
        db, "aggregate(natjoin(na, nb), count by D)", nullptr);
  }
}

// ---------------------------------------------------------------------------
// Directed planner/stats checks.
// ---------------------------------------------------------------------------

TEST(ParallelPlanTest, ThresholdKeepsSmallPlansSerial) {
  // Without force_parallel, a relation far below kParallelMinTuples stays
  // serial no matter how many workers are requested.
  auto db = RandomParallelDb(7);
  auto expr = ParseExpr("join(ra, rb, A0 = B0)");
  ASSERT_TRUE(expr.ok());
  PlanOptions options;
  options.parallelism = 8;
  auto plan = Plan::Lower(*expr, DatabaseResolver(db), options);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(plan->Drain().ok());
  EXPECT_EQ(plan->stats().parallelism, 1u);
  EXPECT_EQ(plan->stats().parallel_operators, 0u);
  EXPECT_EQ(plan->stats().morsels_dispatched, 0u);
  EXPECT_TRUE(plan->stats().worker_tuples.empty());
}

TEST(ParallelPlanTest, ForcedParallelPlanRecordsMorselTraffic) {
  auto db = RandomParallelDb(7);
  auto expr = ParseExpr("aggregate(natjoin(na, nb), count by D)");
  ASSERT_TRUE(expr.ok());
  PlanOptions options;
  options.parallelism = 4;
  options.force_parallel = true;
  auto plan = Plan::Lower(*expr, DatabaseResolver(db), options);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(plan->Drain().ok());
  const PlanStats& stats = plan->stats();
  EXPECT_EQ(stats.parallelism, 4u);
  // Two scan leaves, the hash join and the aggregate all ran parallel
  // phases (the natural join has a shared attribute, so the chooser picks
  // hash for it on these schemes).
  EXPECT_GE(stats.parallel_operators, 3u);
  EXPECT_GT(stats.morsels_dispatched, 0u);
  EXPECT_GT(stats.partitions_merged, 0u);
  // Every processed tuple is attributed to some worker.
  size_t worker_sum = 0;
  for (size_t n : stats.worker_tuples) worker_sum += n;
  EXPECT_GT(worker_sum, 0u);
}

TEST(ParallelPlanTest, ExplicitSingleThreadMatchesDefaultSerialPlan) {
  // parallelism = 1 is the exact legacy path: identical output and
  // identical serial counters to an options-free lowering.
  auto db = RandomParallelDb(11);
  auto expr = ParseExpr("join(ra, rb, A0 = B0)");
  ASSERT_TRUE(expr.ok());
  auto legacy = Plan::Lower(*expr, DatabaseResolver(db));
  ASSERT_TRUE(legacy.ok());
  auto legacy_out = legacy->Drain();
  ASSERT_TRUE(legacy_out.ok());
  PlanOptions options;
  options.parallelism = 1;
  auto single = Plan::Lower(*expr, DatabaseResolver(db), options);
  ASSERT_TRUE(single.ok());
  auto single_out = single->Drain();
  ASSERT_TRUE(single_out.ok());
  EXPECT_EQ(single_out->ToString(), legacy_out->ToString());
  EXPECT_EQ(single->stats().join_pairs_tested,
            legacy->stats().join_pairs_tested);
  EXPECT_EQ(single->stats().peak_buffered, legacy->stats().peak_buffered);
  EXPECT_EQ(single->stats().parallelism, 1u);
  EXPECT_EQ(single->stats().morsels_dispatched, 0u);
}

}  // namespace
}  // namespace hrdm::query
