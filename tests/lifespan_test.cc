// Unit and property tests for the Lifespan interval-set kernel.

#include "core/lifespan.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "util/random.h"

namespace hrdm {
namespace {

TEST(IntervalTest, BasicPredicates) {
  Interval iv(3, 7);
  EXPECT_TRUE(iv.valid());
  EXPECT_EQ(iv.length(), 5u);
  EXPECT_TRUE(iv.contains(3));
  EXPECT_TRUE(iv.contains(7));
  EXPECT_FALSE(iv.contains(8));
  EXPECT_FALSE(Interval(5, 4).valid());
}

TEST(IntervalTest, OverlapAndAdjacency) {
  EXPECT_TRUE(Interval(0, 5).overlaps(Interval(5, 9)));
  EXPECT_FALSE(Interval(0, 4).overlaps(Interval(5, 9)));
  EXPECT_TRUE(Interval(0, 4).adjacent(Interval(5, 9)));
  EXPECT_TRUE(Interval(5, 9).adjacent(Interval(0, 4)));
  EXPECT_FALSE(Interval(0, 3).adjacent(Interval(5, 9)));
}

TEST(IntervalTest, Intersect) {
  EXPECT_EQ(Interval(0, 5).intersect(Interval(3, 9)), Interval(3, 5));
  EXPECT_FALSE(Interval(0, 2).intersect(Interval(5, 9)).valid());
}

TEST(IntervalTest, ToString) {
  EXPECT_EQ(Interval(2, 6).ToString(), "[2,6]");
  EXPECT_EQ(Interval::At(4).ToString(), "[4]");
}

TEST(LifespanTest, EmptyBehaviour) {
  Lifespan l;
  EXPECT_TRUE(l.empty());
  EXPECT_EQ(l.Cardinality(), 0u);
  EXPECT_FALSE(l.Contains(0));
  EXPECT_EQ(l.ToString(), "{}");
  EXPECT_EQ(l.Union(l), l);
  EXPECT_EQ(l.Intersect(l), l);
  EXPECT_EQ(l.Difference(l), l);
}

TEST(LifespanTest, CanonicalizationMergesOverlapsAndAdjacency) {
  Lifespan l = Lifespan::FromIntervals(
      {Interval(5, 9), Interval(0, 3), Interval(4, 4), Interval(7, 12)});
  // [0,3] + [4,4] adjacent -> [0,4]; [0,4] adjacent to [5,9] -> [0,9];
  // overlaps [7,12] -> [0,12].
  ASSERT_EQ(l.IntervalCount(), 1u);
  EXPECT_EQ(l.intervals()[0], Interval(0, 12));
}

TEST(LifespanTest, CanonicalizationDropsInvalid) {
  Lifespan l = Lifespan::FromIntervals({Interval(5, 3), Interval(1, 2)});
  EXPECT_EQ(l, Span(1, 2));
}

TEST(LifespanTest, FromPoints) {
  Lifespan l = Lifespan::FromPoints({5, 1, 2, 3, 9, 2});
  EXPECT_EQ(l.ToString(), "{[1,3],[5],[9]}");
  EXPECT_EQ(l.Cardinality(), 5u);
}

TEST(LifespanTest, ContainsBinarySearch) {
  Lifespan l = Lifespan::FromIntervals({Interval(0, 4), Interval(10, 14)});
  for (TimePoint t = 0; t <= 4; ++t) EXPECT_TRUE(l.Contains(t)) << t;
  for (TimePoint t = 5; t <= 9; ++t) EXPECT_FALSE(l.Contains(t)) << t;
  for (TimePoint t = 10; t <= 14; ++t) EXPECT_TRUE(l.Contains(t)) << t;
  EXPECT_FALSE(l.Contains(-1));
  EXPECT_FALSE(l.Contains(15));
}

TEST(LifespanTest, UnionDisjointAndGapPreserving) {
  Lifespan a = Span(0, 3);
  Lifespan b = Span(8, 10);
  Lifespan u = a.Union(b);
  EXPECT_EQ(u.ToString(), "{[0,3],[8,10]}");
  EXPECT_EQ(u.Cardinality(), 7u);
}

TEST(LifespanTest, IntersectBasic) {
  Lifespan a = Lifespan::FromIntervals({Interval(0, 5), Interval(10, 20)});
  Lifespan b = Lifespan::FromIntervals({Interval(4, 12), Interval(18, 30)});
  EXPECT_EQ(a.Intersect(b).ToString(), "{[4,5],[10,12],[18,20]}");
  EXPECT_EQ(a.Intersect(b), b.Intersect(a));
}

TEST(LifespanTest, DifferenceSplitsIntervals) {
  Lifespan a = Span(0, 10);
  Lifespan b = Lifespan::FromIntervals({Interval(2, 3), Interval(7, 8)});
  EXPECT_EQ(a.Difference(b).ToString(), "{[0,1],[4,6],[9,10]}");
}

TEST(LifespanTest, DifferenceRemovesAll) {
  EXPECT_TRUE(Span(3, 5).Difference(Span(0, 9)).empty());
}

TEST(LifespanTest, DifferenceNoOverlap) {
  Lifespan a = Span(0, 4);
  EXPECT_EQ(a.Difference(Span(10, 20)), a);
}

TEST(LifespanTest, ContainsAll) {
  Lifespan a = Lifespan::FromIntervals({Interval(0, 10), Interval(20, 30)});
  EXPECT_TRUE(a.ContainsAll(Span(2, 5)));
  EXPECT_TRUE(a.ContainsAll(
      Lifespan::FromIntervals({Interval(0, 3), Interval(25, 30)})));
  EXPECT_FALSE(a.ContainsAll(Span(5, 25)));
  EXPECT_TRUE(a.ContainsAll(Lifespan::Empty()));
  EXPECT_FALSE(Lifespan::Empty().ContainsAll(a));
}

TEST(LifespanTest, Overlaps) {
  Lifespan a = Lifespan::FromIntervals({Interval(0, 2), Interval(8, 9)});
  EXPECT_TRUE(a.Overlaps(Span(2, 3)));
  EXPECT_TRUE(a.Overlaps(Span(9, 30)));
  EXPECT_FALSE(a.Overlaps(Span(3, 7)));
  EXPECT_FALSE(a.Overlaps(Lifespan::Empty()));
}

TEST(LifespanTest, MinMaxExtent) {
  Lifespan a = Lifespan::FromIntervals({Interval(3, 5), Interval(9, 12)});
  EXPECT_EQ(a.Min(), 3);
  EXPECT_EQ(a.Max(), 12);
  EXPECT_EQ(a.Extent(), Interval(3, 12));
}

TEST(LifespanTest, MaterializeAndIteratorAgree) {
  Lifespan a = Lifespan::FromIntervals({Interval(1, 3), Interval(7, 8)});
  std::vector<TimePoint> mat = a.Materialize();
  std::vector<TimePoint> itr;
  for (TimePoint t : a) itr.push_back(t);
  EXPECT_EQ(mat, itr);
  EXPECT_EQ(mat, (std::vector<TimePoint>{1, 2, 3, 7, 8}));
}

TEST(LifespanTest, NextOnOrAfter) {
  Lifespan a = Lifespan::FromIntervals({Interval(5, 7), Interval(12, 14)});
  EXPECT_EQ(a.NextOnOrAfter(0), 5);
  EXPECT_EQ(a.NextOnOrAfter(6), 6);
  EXPECT_EQ(a.NextOnOrAfter(8), 12);
  EXPECT_EQ(a.NextOnOrAfter(15), kTimeMax);
}

TEST(LifespanTest, ComplementWithin) {
  Lifespan universe = Span(0, 9);
  Lifespan a = Lifespan::FromIntervals({Interval(0, 2), Interval(5, 6)});
  EXPECT_EQ(a.ComplementWithin(universe).ToString(), "{[3,4],[7,9]}");
}

// ---------------------------------------------------------------------------
// Property tests: the set algebra laws (the paper relies on lifespans being
// closed under ∪, ∩, − with standard set semantics). Verified against a
// reference std::set implementation on random instances.
// ---------------------------------------------------------------------------

Lifespan RandomLifespan(Rng* rng, TimePoint hi = 60) {
  std::vector<Interval> ivs;
  const int n = static_cast<int>(rng->Uniform(0, 5));
  for (int i = 0; i < n; ++i) {
    TimePoint b = rng->Uniform(0, hi);
    TimePoint e = b + rng->Uniform(0, 10);
    ivs.push_back(Interval(b, e));
  }
  return Lifespan::FromIntervals(std::move(ivs));
}

std::set<TimePoint> AsSet(const Lifespan& l) {
  auto pts = l.Materialize();
  return std::set<TimePoint>(pts.begin(), pts.end());
}

class LifespanPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LifespanPropertyTest, SetOpsMatchReferenceSets) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 50; ++iter) {
    Lifespan a = RandomLifespan(&rng);
    Lifespan b = RandomLifespan(&rng);
    std::set<TimePoint> sa = AsSet(a), sb = AsSet(b);

    std::set<TimePoint> su, si, sd;
    std::set_union(sa.begin(), sa.end(), sb.begin(), sb.end(),
                   std::inserter(su, su.begin()));
    std::set_intersection(sa.begin(), sa.end(), sb.begin(), sb.end(),
                          std::inserter(si, si.begin()));
    std::set_difference(sa.begin(), sa.end(), sb.begin(), sb.end(),
                        std::inserter(sd, sd.begin()));

    EXPECT_EQ(AsSet(a.Union(b)), su);
    EXPECT_EQ(AsSet(a.Intersect(b)), si);
    EXPECT_EQ(AsSet(a.Difference(b)), sd);
  }
}

TEST_P(LifespanPropertyTest, AlgebraicLaws) {
  Rng rng(GetParam() * 31 + 7);
  for (int iter = 0; iter < 50; ++iter) {
    Lifespan a = RandomLifespan(&rng);
    Lifespan b = RandomLifespan(&rng);
    Lifespan c = RandomLifespan(&rng);

    // Commutativity.
    EXPECT_EQ(a.Union(b), b.Union(a));
    EXPECT_EQ(a.Intersect(b), b.Intersect(a));
    // Associativity.
    EXPECT_EQ(a.Union(b).Union(c), a.Union(b.Union(c)));
    EXPECT_EQ(a.Intersect(b).Intersect(c), a.Intersect(b.Intersect(c)));
    // Distributivity.
    EXPECT_EQ(a.Intersect(b.Union(c)),
              a.Intersect(b).Union(a.Intersect(c)));
    EXPECT_EQ(a.Union(b.Intersect(c)),
              a.Union(b).Intersect(a.Union(c)));
    // Idempotence and identity.
    EXPECT_EQ(a.Union(a), a);
    EXPECT_EQ(a.Intersect(a), a);
    EXPECT_EQ(a.Union(Lifespan::Empty()), a);
    EXPECT_TRUE(a.Intersect(Lifespan::Empty()).empty());
    // Difference identities.
    EXPECT_EQ(a.Difference(b), a.Difference(a.Intersect(b)));
    EXPECT_EQ(a.Difference(b).Union(a.Intersect(b)), a);
    // De Morgan within a universe.
    Lifespan u = a.Union(b).Union(c).Union(Span(0, 80));
    EXPECT_EQ(a.Union(b).ComplementWithin(u),
              a.ComplementWithin(u).Intersect(b.ComplementWithin(u)));
    EXPECT_EQ(a.Intersect(b).ComplementWithin(u),
              a.ComplementWithin(u).Union(b.ComplementWithin(u)));
  }
}

TEST_P(LifespanPropertyTest, CanonicalFormInvariants) {
  Rng rng(GetParam() * 97 + 13);
  for (int iter = 0; iter < 50; ++iter) {
    Lifespan a = RandomLifespan(&rng);
    Lifespan b = RandomLifespan(&rng);
    for (const Lifespan& l : {a.Union(b), a.Intersect(b), a.Difference(b)}) {
      const auto& ivs = l.intervals();
      for (size_t i = 0; i < ivs.size(); ++i) {
        EXPECT_TRUE(ivs[i].valid());
        if (i > 0) {
          // Strictly separated (disjoint and non-adjacent).
          EXPECT_GT(ivs[i].begin, ivs[i - 1].end + 1);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LifespanPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 42u, 1234u, 99999u));

}  // namespace
}  // namespace hrdm
