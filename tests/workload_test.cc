// Tests for the workload generators: determinism, well-formedness and the
// domain properties each generator promises.

#include "workload/generators.h"

#include <gtest/gtest.h>

#include "constraints/constraints.h"

namespace hrdm::workload {
namespace {

TEST(PersonnelTest, DeterministicGivenSeed) {
  Rng a(123), b(123);
  PersonnelConfig config;
  config.num_employees = 20;
  auto r1 = MakePersonnel(&a, config);
  auto r2 = MakePersonnel(&b, config);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r1->EqualsAsSet(*r2));
}

TEST(PersonnelTest, SomeEmployeesAreReincarnated) {
  Rng rng(1);
  PersonnelConfig config;
  config.num_employees = 200;
  config.rehire_probability = 0.5;
  auto r = MakePersonnel(&rng, config);
  ASSERT_TRUE(r.ok());
  size_t fragmented = 0;
  for (const Tuple& t : *r) {
    if (t.lifespan().IntervalCount() > 1) ++fragmented;
  }
  EXPECT_GT(fragmented, 10u);  // hire/fire/re-hire histories exist
}

TEST(PersonnelTest, SalariesNeverDecrease) {
  Rng rng(2);
  auto r = MakePersonnel(&rng, PersonnelConfig{});
  ASSERT_TRUE(r.ok());
  auto v = CheckMonotone(*r, "Salary", /*non_decreasing=*/true);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->empty());
}

TEST(StockMarketTest, VolumeHasFigure6Gap) {
  Rng rng(3);
  StockMarketConfig config;
  auto r = MakeStockMarket(&rng, config);
  ASSERT_TRUE(r.ok());
  const auto idx = r->scheme()->IndexOf("DailyVolume");
  ASSERT_TRUE(idx.has_value());
  const Lifespan& als = r->scheme()->AttributeLifespan(*idx);
  EXPECT_EQ(als.IntervalCount(), 2u);
  EXPECT_FALSE(als.Contains(config.volume_drop_at));
  EXPECT_TRUE(als.Contains(config.volume_resume_at));
  // Every tuple's volume history respects the attribute lifespan.
  for (const Tuple& t : *r) {
    EXPECT_TRUE(als.ContainsAll(t.value(*idx).domain()));
  }
}

TEST(StockMarketTest, PricesInterpolateLinearly) {
  Rng rng(4);
  StockMarketConfig config;
  config.num_tickers = 3;
  auto r = MakeStockMarket(&rng, config);
  ASSERT_TRUE(r.ok());
  const size_t pi = *r->scheme()->IndexOf("Price");
  for (const Tuple& t : *r) {
    // The stored representation is sparse samples...
    EXPECT_LT(t.value(pi).domain().Cardinality(),
              t.lifespan().Cardinality());
    // ...but the model level is total on the lifespan.
    auto model = t.ModelValue(pi);
    ASSERT_TRUE(model.ok());
    EXPECT_EQ(model->domain(), t.Vls(pi));
  }
}

TEST(EnrollmentTest, TemporalRIHoldsByConstruction) {
  Rng rng(5);
  EnrollmentConfig config;
  auto db = MakeEnrollment(&rng, config);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->RelationNames(),
            (std::vector<std::string>{"course", "enroll", "student"}));
  auto v = db->CheckIntegrity();
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->empty());
  EXPECT_EQ(db->foreign_keys().size(), 2u);
}

TEST(RandomRelationTest, RespectsConfig) {
  Rng rng(6);
  RandomRelationConfig config;
  config.num_tuples = 25;
  config.num_value_attrs = 3;
  config.with_time_attribute = true;
  config.random_attribute_lifespans = true;
  auto r = MakeRandomRelation(&rng, config);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->scheme()->arity(), 5u);  // Id + A0..A2 + Ref
  EXPECT_LE(r->size(), 25u);
  auto v = CheckRelationWellFormed(*r);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->empty());
}

TEST(MergeablePairTest, SharedObjectsAreMergeable) {
  Rng rng(7);
  RandomRelationConfig config;
  config.num_tuples = 30;
  auto pair = MakeMergeablePair(&rng, config, 0.8);
  ASSERT_TRUE(pair.ok());
  const auto& [r1, r2] = *pair;
  size_t shared = 0;
  for (const Tuple& t1 : r1) {
    auto idx = r2.FindByKey(t1.KeyValues());
    if (!idx.has_value()) continue;
    ++shared;
    EXPECT_TRUE(t1.MergeableWith(r2.tuple(*idx)));
  }
  EXPECT_GT(shared, 5u);
}

}  // namespace
}  // namespace hrdm::workload
