// Tests for the temporal constraint engine (Sections 1 and 5): point and
// global FDs, monotonicity, temporal referential integrity, and relation
// well-formedness.

#include "constraints/constraints.h"

#include <gtest/gtest.h>

#include "util/random.h"
#include "workload/generators.h"

namespace hrdm {
namespace {

const Lifespan kFull = Span(0, 99);

SchemePtr EmpScheme() {
  static SchemePtr s = *RelationScheme::Make(
      "emp",
      {{"Name", DomainType::kString, kFull, InterpolationKind::kDiscrete},
       {"Dept", DomainType::kString, kFull, InterpolationKind::kStepwise},
       {"Mgr", DomainType::kString, kFull, InterpolationKind::kStepwise},
       {"Salary", DomainType::kInt, kFull, InterpolationKind::kStepwise}},
      {"Name"});
  return s;
}

Tuple Emp(const std::string& name, TimePoint b, TimePoint e,
          std::vector<Segment> dept, std::vector<Segment> mgr,
          std::vector<Segment> salary) {
  Tuple::Builder builder(EmpScheme(), Span(b, e));
  builder.SetConstant("Name", Value::String(name));
  builder.Set("Dept", *TemporalValue::FromSegments(std::move(dept)));
  builder.Set("Mgr", *TemporalValue::FromSegments(std::move(mgr)));
  builder.Set("Salary", *TemporalValue::FromSegments(std::move(salary)));
  return *std::move(builder).Build();
}

TEST(PointFDTest, HoldsWhenDeptDeterminesMgrPointwise) {
  // Dept -> Mgr at every chronon, even though the mapping changes over
  // time (tools: ann then bob).
  Relation r(EmpScheme());
  ASSERT_TRUE(
      r.Insert(Emp("john", 0, 19,
                   {{Interval(0, 19), Value::String("tools")}},
                   {{Interval(0, 9), Value::String("ann")},
                    {Interval(10, 19), Value::String("bob")}},
                   {{Interval(0, 19), Value::Int(10)}}))
          .ok());
  ASSERT_TRUE(
      r.Insert(Emp("mary", 5, 19,
                   {{Interval(5, 19), Value::String("tools")}},
                   {{Interval(5, 9), Value::String("ann")},
                    {Interval(10, 19), Value::String("bob")}},
                   {{Interval(5, 19), Value::Int(20)}}))
          .ok());
  auto v = CheckPointFD(r, {"Dept"}, {"Mgr"});
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->empty());
  // But Dept does NOT globally determine Mgr across time (ann vs bob).
  auto g = CheckGlobalFD(r, {"Dept"}, {"Mgr"});
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(g->empty());
}

TEST(PointFDTest, DetectsPointViolation) {
  Relation r(EmpScheme());
  ASSERT_TRUE(r.Insert(Emp("john", 0, 9,
                           {{Interval(0, 9), Value::String("tools")}},
                           {{Interval(0, 9), Value::String("ann")}},
                           {{Interval(0, 9), Value::Int(10)}}))
                  .ok());
  ASSERT_TRUE(r.Insert(Emp("mary", 5, 9,
                           {{Interval(5, 9), Value::String("tools")}},
                           {{Interval(5, 9), Value::String("bob")}},
                           {{Interval(5, 9), Value::Int(20)}}))
                  .ok());
  auto v = CheckPointFD(r, {"Dept"}, {"Mgr"});
  ASSERT_TRUE(v.ok());
  ASSERT_FALSE(v->empty());
  EXPECT_NE(v->front().description.find("point FD violated"),
            std::string::npos);
}

TEST(GlobalFDTest, HoldsForTimeInvariantMapping) {
  Relation r(EmpScheme());
  ASSERT_TRUE(r.Insert(Emp("john", 0, 9,
                           {{Interval(0, 9), Value::String("tools")}},
                           {{Interval(0, 9), Value::String("ann")}},
                           {{Interval(0, 9), Value::Int(10)}}))
                  .ok());
  ASSERT_TRUE(r.Insert(Emp("mary", 20, 29,
                           {{Interval(20, 29), Value::String("tools")}},
                           {{Interval(20, 29), Value::String("ann")}},
                           {{Interval(20, 29), Value::Int(20)}}))
                  .ok());
  // Same department at *different* chronons still maps to the same
  // manager — the global FD holds.
  auto g = CheckGlobalFD(r, {"Dept"}, {"Mgr"});
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g->empty());
}

TEST(MonotoneTest, SalaryNeverDecreases) {
  // The paper's "salary must never decrease" constraint.
  Relation good(EmpScheme());
  ASSERT_TRUE(good.Insert(Emp("john", 0, 19,
                              {{Interval(0, 19), Value::String("t")}},
                              {{Interval(0, 19), Value::String("m")}},
                              {{Interval(0, 9), Value::Int(10)},
                               {Interval(10, 19), Value::Int(20)}}))
                  .ok());
  auto v = CheckMonotone(good, "Salary", /*non_decreasing=*/true);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->empty());

  Relation bad(EmpScheme());
  ASSERT_TRUE(bad.Insert(Emp("mary", 0, 19,
                             {{Interval(0, 19), Value::String("t")}},
                             {{Interval(0, 19), Value::String("m")}},
                             {{Interval(0, 9), Value::Int(20)},
                              {Interval(10, 19), Value::Int(10)}}))
                  .ok());
  auto bv = CheckMonotone(bad, "Salary", true);
  ASSERT_TRUE(bv.ok());
  ASSERT_EQ(bv->size(), 1u);
  EXPECT_NE(bv->front().description.find("decreases"), std::string::npos);
}

TEST(MonotoneTest, AcrossLifespanGaps) {
  // A re-hire at lower salary still violates "never decrease" — the
  // constraint ranges over the whole (fragmented) value lifespan.
  Relation r(EmpScheme());
  ASSERT_TRUE(
      r.Insert(Emp("john", 0, 39,
                   {{Interval(0, 9), Value::String("t")},
                    {Interval(30, 39), Value::String("t")}},
                   {{Interval(0, 9), Value::String("m")},
                    {Interval(30, 39), Value::String("m")}},
                   {{Interval(0, 9), Value::Int(50)},
                    {Interval(30, 39), Value::Int(10)}}))
          .ok());
  auto v = CheckMonotone(r, "Salary", true);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->size(), 1u);
}

TEST(MonotoneTest, RequiresOrderedDomain) {
  Relation r(EmpScheme());
  auto v = CheckMonotone(r, "Dept", true);
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kTypeError);
}

TEST(TemporalFKTest, EnrollmentWorkloadIsClean) {
  Rng rng(7);
  auto db = workload::MakeEnrollment(&rng, workload::EnrollmentConfig{});
  ASSERT_TRUE(db.ok());
  auto violations = db->CheckIntegrity();
  ASSERT_TRUE(violations.ok());
  EXPECT_TRUE(violations->empty());
}

TEST(TemporalFKTest, DetectsTemporalViolation) {
  // Section 1: "a student can only take a course at time t if both the
  // student and the course exist in the database at time t." Build a
  // minimal student/enroll pair where the enrollment outlives the student.
  storage::Database db;
  const Lifespan full = Span(0, 99);
  ASSERT_TRUE(db.CreateRelation(
                    "student",
                    {{"SId", DomainType::kString, full,
                      InterpolationKind::kDiscrete}},
                    {"SId"})
                  .ok());
  ASSERT_TRUE(db.CreateRelation(
                    "enroll",
                    {{"EId", DomainType::kString, full,
                      InterpolationKind::kDiscrete},
                     {"SId", DomainType::kString, full,
                      InterpolationKind::kStepwise}},
                    {"EId"})
                  .ok());
  {
    auto scheme = *db.catalog().Get("student");
    Tuple::Builder b(scheme, Span(0, 9));
    b.SetConstant("SId", Value::String("s1"));
    ASSERT_TRUE(db.Insert("student", *std::move(b).Build()).ok());
  }
  {
    auto scheme = *db.catalog().Get("enroll");
    Tuple::Builder b(scheme, Span(5, 14));  // outlives the student!
    b.SetConstant("EId", Value::String("e1"));
    b.SetConstant("SId", Value::String("s1"));
    ASSERT_TRUE(db.Insert("enroll", *std::move(b).Build()).ok());
  }
  ASSERT_TRUE(db.RegisterForeignKey("enroll", {"SId"}, "student").ok());
  auto v = db.CheckIntegrity();
  ASSERT_TRUE(v.ok());
  ASSERT_FALSE(v->empty());
  EXPECT_NE(v->front().description.find("temporal RI violated"),
            std::string::npos);
}

TEST(WellFormedTest, GeneratorsProduceWellFormedRelations) {
  Rng rng(11);
  auto emp = workload::MakePersonnel(&rng, workload::PersonnelConfig{});
  ASSERT_TRUE(emp.ok());
  auto v = CheckRelationWellFormed(*emp);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->empty());

  auto stocks =
      workload::MakeStockMarket(&rng, workload::StockMarketConfig{});
  ASSERT_TRUE(stocks.ok());
  auto sv = CheckRelationWellFormed(*stocks);
  ASSERT_TRUE(sv.ok());
  EXPECT_TRUE(sv->empty());
}

TEST(WellFormedTest, DetectsKeyCollisionsInDerivedRelations) {
  Relation r(EmpScheme());
  Tuple a = Emp("john", 0, 9, {{Interval(0, 9), Value::String("t")}},
                {{Interval(0, 9), Value::String("m")}},
                {{Interval(0, 9), Value::Int(1)}});
  Tuple b = Emp("john", 20, 29, {{Interval(20, 29), Value::String("t")}},
                {{Interval(20, 29), Value::String("m")}},
                {{Interval(20, 29), Value::Int(2)}});
  ASSERT_TRUE(r.InsertDedup(a).ok());
  ASSERT_TRUE(r.InsertDedup(b).ok());  // key collision allowed by dedup
  auto v = CheckRelationWellFormed(r);
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(v->empty());
}

TEST(CriticalChrononsTest, CoversAllChangePoints) {
  Relation r(EmpScheme());
  ASSERT_TRUE(r.Insert(Emp("john", 0, 19,
                           {{Interval(0, 9), Value::String("a")},
                            {Interval(10, 19), Value::String("b")}},
                           {{Interval(0, 19), Value::String("m")}},
                           {{Interval(0, 19), Value::Int(1)}}))
                  .ok());
  auto pts = CriticalChronons(r, {"Dept"});
  ASSERT_TRUE(pts.ok());
  // Must include the tuple birth, the Dept change point and the
  // past-the-end chronons.
  for (TimePoint expect : {0, 10, 20}) {
    EXPECT_NE(std::find(pts->begin(), pts->end(), expect), pts->end())
        << expect;
  }
}

}  // namespace
}  // namespace hrdm
