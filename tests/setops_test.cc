// Tests for the set-theoretic and object-based operators (Section 4.1),
// including an operational reproduction of Figure 11.

#include "algebra/setops.h"

#include <gtest/gtest.h>

#include "algebra/when.h"
#include "util/random.h"
#include "workload/generators.h"

namespace hrdm {
namespace {

const Lifespan kFull = Span(0, 99);

SchemePtr EmpScheme(const std::string& name = "emp") {
  return *RelationScheme::Make(
      name,
      {{"Name", DomainType::kString, kFull, InterpolationKind::kDiscrete},
       {"Salary", DomainType::kInt, kFull, InterpolationKind::kDiscrete}},
      {"Name"});
}

Tuple EmpTuple(const SchemePtr& s, const std::string& name, TimePoint b,
               TimePoint e, int64_t salary) {
  Tuple::Builder builder(s, Span(b, e));
  builder.SetConstant("Name", Value::String(name));
  builder.SetConstant("Salary", Value::Int(salary));
  return *std::move(builder).Build();
}

/// The Figure 11 instance: the same object ("john") recorded over two
/// different periods in two relations, with consistent values.
struct Figure11 {
  SchemePtr scheme = EmpScheme();
  Relation r1{scheme};
  Relation r2{scheme};

  Figure11() {
    // r1 knows john over [0,9]; r2 knows john over [10,19]. Same salary.
    Tuple::Builder b1(scheme, Span(0, 9));
    b1.SetConstant("Name", Value::String("john"));
    b1.SetConstant("Salary", Value::Int(30));
    EXPECT_TRUE(r1.Insert(*std::move(b1).Build()).ok());

    Tuple::Builder b2(scheme, Span(10, 19));
    b2.SetConstant("Name", Value::String("john"));
    b2.SetConstant("Salary", Value::Int(30));
    EXPECT_TRUE(r2.Insert(*std::move(b2).Build()).ok());
  }
};

TEST(SetOpsTest, Figure11StandardUnionIsCounterIntuitive) {
  Figure11 f;
  auto u = Union(f.r1, f.r2);
  ASSERT_TRUE(u.ok());
  // The standard union keeps TWO tuples for the same object — exactly the
  // counter-intuitive result the paper criticises.
  EXPECT_EQ(u->size(), 2u);
  EXPECT_EQ(u->FindAllByKey({Value::String("john")}).size(), 2u);
}

TEST(SetOpsTest, Figure11ObjectUnionMergesTheObject) {
  Figure11 f;
  auto u = UnionO(f.r1, f.r2);
  ASSERT_TRUE(u.ok());
  // r1 +o r2: one tuple whose lifespan is the union of both histories.
  ASSERT_EQ(u->size(), 1u);
  EXPECT_EQ(u->tuple(0).lifespan().ToString(), "{[0,19]}");
  EXPECT_EQ(u->tuple(0).ValueAt(1, 5), Value::Int(30));
  EXPECT_EQ(u->tuple(0).ValueAt(1, 15), Value::Int(30));
}

TEST(SetOpsTest, UnionRequiresCompatibility) {
  Figure11 f;
  auto other_scheme = *RelationScheme::Make(
      "x", {{"Z", DomainType::kInt, kFull, InterpolationKind::kDiscrete}},
      {"Z"});
  Relation other(other_scheme);
  auto u = Union(f.r1, other);
  EXPECT_FALSE(u.ok());
  EXPECT_EQ(u.status().code(), StatusCode::kIncompatibleSchemes);
}

TEST(SetOpsTest, IntersectKeepsOnlySharedTuples) {
  SchemePtr s = EmpScheme();
  Relation r1(s), r2(s);
  Tuple shared = EmpTuple(s, "a", 0, 9, 1);
  ASSERT_TRUE(r1.Insert(shared).ok());
  ASSERT_TRUE(r1.Insert(EmpTuple(s, "b", 0, 9, 2)).ok());
  ASSERT_TRUE(r2.Insert(shared).ok());
  ASSERT_TRUE(r2.Insert(EmpTuple(s, "c", 0, 9, 3)).ok());
  auto i = Intersect(r1, r2);
  ASSERT_TRUE(i.ok());
  ASSERT_EQ(i->size(), 1u);
  EXPECT_EQ(i->tuple(0).KeyValues()[0], Value::String("a"));
}

TEST(SetOpsTest, DifferenceRemovesExactMatchesOnly) {
  SchemePtr s = EmpScheme();
  Relation r1(s), r2(s);
  ASSERT_TRUE(r1.Insert(EmpTuple(s, "a", 0, 9, 1)).ok());
  ASSERT_TRUE(r1.Insert(EmpTuple(s, "b", 0, 9, 2)).ok());
  // Same key as "a" but a different history — NOT removed by set minus.
  ASSERT_TRUE(r2.Insert(EmpTuple(s, "a", 0, 5, 1)).ok());
  auto d = Difference(r1, r2);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->size(), 2u);
  ASSERT_TRUE(r2.Insert(EmpTuple(s, "b", 0, 9, 2)).ok());
  auto d2 = Difference(r1, r2);
  ASSERT_TRUE(d2.ok());
  EXPECT_EQ(d2->size(), 1u);
}

TEST(SetOpsTest, CartesianProductUnionsLifespans) {
  SchemePtr s1 = EmpScheme();
  auto s2 = *RelationScheme::Make(
      "dept",
      {{"DName", DomainType::kString, kFull, InterpolationKind::kDiscrete},
       {"Budget", DomainType::kInt, kFull, InterpolationKind::kDiscrete}},
      {"DName"});
  Relation r1(s1), r2(s2);
  ASSERT_TRUE(r1.Insert(EmpTuple(s1, "a", 0, 9, 1)).ok());
  Tuple::Builder b(s2, Span(20, 29));
  b.SetConstant("DName", Value::String("tools"));
  b.SetConstant("Budget", Value::Int(100));
  ASSERT_TRUE(r2.Insert(*std::move(b).Build()).ok());

  auto p = CartesianProduct(r1, r2);
  ASSERT_TRUE(p.ok());
  ASSERT_EQ(p->size(), 1u);
  const Tuple& t = p->tuple(0);
  // Section 4.1: the product tuple lives on the UNION of the lifespans...
  EXPECT_EQ(t.lifespan().ToString(), "{[0,9],[20,29]}");
  // ...with each side's values undefined outside its own region (the
  // "null values" of the Section 5 discussion).
  auto salary = *t.value("Salary");
  auto budget = *t.value("Budget");
  EXPECT_EQ(salary.ValueAt(5), Value::Int(1));
  EXPECT_TRUE(salary.ValueAt(25).absent());
  EXPECT_TRUE(budget.ValueAt(5).absent());
  EXPECT_EQ(budget.ValueAt(25), Value::Int(100));
}

TEST(SetOpsTest, CartesianProductRequiresDisjointAttributes) {
  Figure11 f;
  auto p = CartesianProduct(f.r1, f.r2);
  EXPECT_FALSE(p.ok());
}

TEST(SetOpsTest, IntersectOComputesCommonHistory) {
  SchemePtr s = EmpScheme();
  Relation r1(s), r2(s);
  ASSERT_TRUE(r1.Insert(EmpTuple(s, "a", 0, 10, 7)).ok());
  ASSERT_TRUE(r2.Insert(EmpTuple(s, "a", 5, 20, 7)).ok());
  ASSERT_TRUE(r2.Insert(EmpTuple(s, "b", 0, 9, 9)).ok());
  auto i = IntersectO(r1, r2);
  ASSERT_TRUE(i.ok());
  ASSERT_EQ(i->size(), 1u);
  EXPECT_EQ(i->tuple(0).lifespan().ToString(), "{[5,10]}");
  EXPECT_EQ(i->tuple(0).ValueAt(1, 7), Value::Int(7));
}

TEST(SetOpsTest, DifferenceOSubtractsLifespans) {
  SchemePtr s = EmpScheme();
  Relation r1(s), r2(s);
  ASSERT_TRUE(r1.Insert(EmpTuple(s, "a", 0, 20, 7)).ok());
  ASSERT_TRUE(r1.Insert(EmpTuple(s, "b", 0, 9, 9)).ok());
  ASSERT_TRUE(r2.Insert(EmpTuple(s, "a", 5, 10, 7)).ok());
  auto d = DifferenceO(r1, r2);
  ASSERT_TRUE(d.ok());
  ASSERT_EQ(d->size(), 2u);
  auto idx = d->FindByKey({Value::String("a")});
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(d->tuple(*idx).lifespan().ToString(), "{[0,4],[11,20]}");
  // b passes through unchanged.
  auto bidx = d->FindByKey({Value::String("b")});
  ASSERT_TRUE(bidx.has_value());
  EXPECT_EQ(d->tuple(*bidx).lifespan().ToString(), "{[0,9]}");
}

TEST(SetOpsTest, DifferenceOFullOverlapRemovesObject) {
  SchemePtr s = EmpScheme();
  Relation r1(s), r2(s);
  ASSERT_TRUE(r1.Insert(EmpTuple(s, "a", 5, 10, 7)).ok());
  ASSERT_TRUE(r2.Insert(EmpTuple(s, "a", 0, 20, 7)).ok());
  auto d = DifferenceO(r1, r2);
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d->empty());
}

// ---------------------------------------------------------------------------
// Property tests on MakeMergeablePair workloads.
// ---------------------------------------------------------------------------

class SetOpsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SetOpsPropertyTest, ObjectUnionCoversBothAndMergesKeys) {
  Rng rng(GetParam());
  workload::RandomRelationConfig config;
  config.num_tuples = 15;
  auto pair = workload::MakeMergeablePair(&rng, config, 0.6);
  ASSERT_TRUE(pair.ok());
  const auto& [r1, r2] = *pair;
  auto u = UnionO(r1, r2);
  ASSERT_TRUE(u.ok());
  // LS(r1 ∪o r2) = LS(r1) ∪ LS(r2).
  EXPECT_EQ(When(*u), When(r1).Union(When(r2)));
  // One tuple per object key (everything mergeable by construction).
  for (const Tuple& t : *u) {
    EXPECT_EQ(u->FindAllByKey(t.KeyValues()).size(), 1u);
  }
}

TEST_P(SetOpsPropertyTest, ObjectIntersectionIsLowerBound) {
  Rng rng(GetParam() * 17 + 3);
  workload::RandomRelationConfig config;
  config.num_tuples = 15;
  auto pair = workload::MakeMergeablePair(&rng, config, 0.7);
  ASSERT_TRUE(pair.ok());
  const auto& [r1, r2] = *pair;
  auto i = IntersectO(r1, r2);
  ASSERT_TRUE(i.ok());
  for (const Tuple& t : *i) {
    auto i1 = r1.FindByKey(t.KeyValues());
    auto i2 = r2.FindByKey(t.KeyValues());
    ASSERT_TRUE(i1.has_value());
    ASSERT_TRUE(i2.has_value());
    // t.l = t1.l ∩ t2.l per the paper.
    EXPECT_EQ(t.lifespan(),
              r1.tuple(*i1).lifespan().Intersect(r2.tuple(*i2).lifespan()));
  }
}

TEST_P(SetOpsPropertyTest, StandardOpsSetLaws) {
  Rng rng(GetParam() * 31 + 11);
  workload::RandomRelationConfig config;
  config.num_tuples = 12;
  auto pair = workload::MakeMergeablePair(&rng, config, 0.4);
  ASSERT_TRUE(pair.ok());
  const auto& [r1, r2] = *pair;

  auto u12 = *Union(r1, r2);
  auto u21 = *Union(r2, r1);
  EXPECT_TRUE(u12.EqualsAsSet(u21));  // commutativity

  auto i12 = *Intersect(r1, r2);
  auto i21 = *Intersect(r2, r1);
  EXPECT_TRUE(i12.EqualsAsSet(i21));

  // r1 − r2 and r1 ∩ r2 partition r1 (at the model level).
  auto d = *Difference(r1, r2);
  auto m1 = *MaterializeRelation(r1);
  EXPECT_EQ(d.size() + i12.size(), m1.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SetOpsPropertyTest,
                         ::testing::Values(1u, 5u, 99u, 2024u));

}  // namespace
}  // namespace hrdm
