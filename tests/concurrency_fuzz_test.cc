// N reader × M writer differential fuzz of multi-session snapshot
// isolation over one StorageEngine — the concurrent counterpart of
// tests/session_isolation_test.cc, designed to run under ThreadSanitizer
// (the thread-sanitize CI job executes this suite like every other).
//
// Per seed:
//
//  * a serial warm-up builds relation "obj" (+ lifespan and value
//    indexes) and a few objects through the shared WorkloadRunner;
//
//  * kWriters writer threads each replay their own seeded WorkloadRunner
//    (distinct key prefixes, same relation). A test-level mutex both
//    applies each op to the engine and appends (writer, step, status) to
//    one global log inside the same critical section, so the log's order
//    IS the engine's apply order — that makes the serial replay below a
//    deterministic oracle while readers stay fully concurrent;
//
//  * kReaders reader threads repeatedly open sessions with NO lock of any
//    kind, capture the frozen rendering + snapshot image, decode the image
//    into a private replica database, and assert that a query battery
//    evaluated through the session is byte-identical to the same battery
//    on the replica — then re-assert the rendering and the battery later
//    in the session's life (meanwhile writers have committed);
//
//  * after all threads join, the log is replayed serially against a fresh
//    in-memory Database: every status must match the concurrent run and
//    the final ToString() must equal the engine's — writers lost nothing
//    to the readers' traffic;
//
//  * finally the engine directory is reopened and recovery must reproduce
//    the same final state (durability was not disturbed by concurrency).

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "query/executor.h"
#include "session/session.h"
#include "storage/database.h"
#include "storage/storage_engine.h"
#include "tests/storage_test_util.h"
#include "tests/test_seeds.h"
#include "util/mutex.h"

namespace hrdm {
namespace {

using session::Session;
using storage::Database;
using storage::StorageEngine;
using storage::testing::TempDir;
using storage::testing::WorkloadRunner;

constexpr const char* kSeedEnv = "HRDM_CONCURRENCY_FUZZ_SEEDS";

constexpr int kWriters = 2;
constexpr int kReaders = 3;
constexpr int kSetupSteps = 15;       // serial warm-up (includes DDL steps)
constexpr int kStepsPerWriter = 40;   // logged ops per writer thread
constexpr int kSessionsPerReader = 6;

const std::vector<std::string>& QueryBattery() {
  static const std::vector<std::string> kQueries = {
      "obj",
      "timeslice(obj, {[5, 20]})",
      "select_if(obj, X > 50, exists)",
      "project(obj, Id)",
      "aggregate(obj, count)",
  };
  return kQueries;
}

std::string Outcome(const Result<Relation>& r) {
  return r.ok() ? "ok:\n" + r->ToString() : "error: " + r.status().ToString();
}

uint64_t WriterSeed(uint64_t seed, int writer) {
  return seed * 1000003u + static_cast<uint64_t>(writer) + 1;
}

std::string WriterPrefix(int writer) {
  return "w" + std::to_string(writer) + "_";
}

/// One committed-or-rejected op as both runs must see it: which writer,
/// that writer's own step number, and the status the engine returned.
struct LoggedOp {
  int writer;
  int step;
  std::string status;
};

class ConcurrencyFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConcurrencyFuzzTest, ReadersStayIsolatedAndWritersSerialize) {
  const uint64_t seed = GetParam();
  SCOPED_TRACE(hrdm::testing::SeedTrace(kSeedEnv, seed));

  TempDir dir("confuzz");
  StorageEngine::Options options;
  options.fsync = storage::FsyncPolicy::kOff;  // durability ≠ this test
  std::string final_render;
  std::vector<LoggedOp> log;

  {
    auto opened = StorageEngine::Open(dir.path(), options);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    StorageEngine engine = std::move(opened).value();

    // Serial warm-up: schema + indexes + a few objects.
    WorkloadRunner setup(seed);
    for (int step = 0; step < kSetupSteps; ++step) {
      setup.Step(&engine, step);
    }

    // The writer lock: applying an op to the engine and logging it happen
    // in ONE critical section, so log order == engine apply order.
    util::Mutex write_mu;

    std::atomic<bool> failed{false};
    std::vector<std::thread> threads;
    threads.reserve(kWriters + kReaders);

    for (int w = 0; w < kWriters; ++w) {
      threads.emplace_back([&, w] {
        WorkloadRunner runner(WriterSeed(seed, w), WriterPrefix(w));
        for (int step = 3; step < 3 + kStepsPerWriter; ++step) {
          util::MutexLock lock(write_mu);
          const Status s = runner.Step(&engine, step);
          log.push_back(LoggedOp{w, step, s.ToString()});
        }
      });
    }

    for (int r = 0; r < kReaders; ++r) {
      threads.emplace_back([&, r] {
        for (int i = 0; i < kSessionsPerReader && !failed.load(); ++i) {
          SCOPED_TRACE("reader " + std::to_string(r) + " session " +
                       std::to_string(i));
          // Lock-free open: no engine mutex, no writer coordination.
          Session s = Session::Open(engine);
          const std::string frozen = s.ToString();
          const std::string image = s.EncodeSnapshot();

          auto replica = Database::DecodeSnapshot(image);
          if (!replica.ok()) {
            failed.store(true);
            FAIL() << "snapshot of pinned version does not decode: "
                   << replica.status().ToString();
          }
          // Every query through the session must answer exactly as on the
          // private replica frozen at open.
          std::vector<std::string> outcomes;
          outcomes.reserve(QueryBattery().size());
          for (const std::string& q : QueryBattery()) {
            const std::string via_session = Outcome(s.Run(q));
            const std::string via_replica = Outcome(query::Run(q, *replica));
            if (via_session != via_replica) {
              failed.store(true);
              FAIL() << "query '" << q
                     << "' diverged from the frozen replica";
            }
            outcomes.push_back(via_session);
          }
          // Writers have been committing the whole time; the session must
          // not have moved.
          if (s.ToString() != frozen || s.EncodeSnapshot() != image) {
            failed.store(true);
            FAIL() << "pinned snapshot changed during the session";
          }
          for (size_t qi = 0; qi < QueryBattery().size(); ++qi) {
            if (Outcome(s.Run(QueryBattery()[qi])) != outcomes[qi]) {
              failed.store(true);
              FAIL() << "re-running '" << QueryBattery()[qi]
                     << "' in the same session changed its answer";
            }
          }
        }
      });
    }

    for (std::thread& t : threads) t.join();
    ASSERT_FALSE(failed.load());

    final_render = engine.db().ToString();
  }  // engine closed (files released) before the recovery reopen below

  // Serial replay oracle: the same ops in logged order against a fresh
  // in-memory database must reproduce every status and the final state.
  {
    Database oracle;
    WorkloadRunner setup(seed);
    for (int step = 0; step < kSetupSteps; ++step) {
      setup.Step(&oracle, step);
    }
    std::vector<WorkloadRunner> writers;
    writers.reserve(kWriters);
    for (int w = 0; w < kWriters; ++w) {
      writers.emplace_back(WriterSeed(seed, w), WriterPrefix(w));
    }
    for (size_t i = 0; i < log.size(); ++i) {
      const LoggedOp& op = log[i];
      const Status replayed = writers[op.writer].Step(&oracle, op.step);
      ASSERT_EQ(replayed.ToString(), op.status)
          << "log entry " << i << " (writer " << op.writer << " step "
          << op.step << ") diverged under serial replay";
    }
    ASSERT_EQ(oracle.ToString(), final_render)
        << "serial replay of the logged ops does not reproduce the "
           "concurrent engine state";
  }

  // Recovery differential: reopening the directory replays the WAL into
  // the same final state the concurrent run ended in.
  auto reopened = StorageEngine::Open(dir.path(), options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened->db().ToString(), final_render);
}

std::vector<uint64_t> DefaultSeeds() {
  std::vector<uint64_t> seeds;
  seeds.reserve(100);
  for (uint64_t s = 1; s <= 100; ++s) seeds.push_back(s);
  return seeds;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConcurrencyFuzzTest,
                         ::testing::ValuesIn(hrdm::testing::SeedsFromEnv(
                             kSeedEnv, DefaultSeeds())));

}  // namespace
}  // namespace hrdm
