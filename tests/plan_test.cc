// The physical plan layer: streaming/materializing parity (property-tested
// over random databases for every operator and for optimizer-rewritten
// trees), copy-on-write relation semantics, and the end-to-end streaming
// guarantee for deep unary pipelines (peak intermediate tuples == 0).

#include "query/plan.h"

#include <gtest/gtest.h>

#include "query/executor.h"
#include "query/optimizer.h"
#include "query/parser.h"
#include "test_seeds.h"
#include "util/random.h"
#include "workload/generators.h"

namespace hrdm::query {
namespace {

constexpr char kSeedEnv[] = "HRDM_PLAN_SEEDS";

/// Two union-compatible random relations r0/r1 (overlapping key spaces,
/// random ALS gaps, a time-valued Ref attribute for dynslice).
storage::Database RandomDb(uint64_t seed) {
  Rng rng(seed);
  storage::Database db;
  for (int i = 0; i < 2; ++i) {
    workload::RandomRelationConfig config;
    config.name = "r" + std::to_string(i);
    config.num_tuples = 20;
    config.num_value_attrs = 2;
    config.horizon = 60;
    config.with_time_attribute = true;
    config.random_attribute_lifespans = true;
    config.key_space = 30;  // overlap between r0 and r1
    auto rel = workload::MakeRandomRelation(&rng, config);
    EXPECT_TRUE(rel.ok());
    EXPECT_TRUE(db.CreateRelation(rel->scheme()).ok());
    for (const Tuple& t : *rel) {
      EXPECT_TRUE(db.Insert(config.name, t).ok());
    }
  }
  return db;
}

/// Two small relations with disjoint attribute sets (for × and the joins);
/// lft carries a time-valued Ref for timejoin.
storage::Database JoinDb(uint64_t seed) {
  Rng rng(seed);
  const Lifespan full = Span(0, 59);
  SchemePtr left = *RelationScheme::Make(
      "lft",
      {{"LId", DomainType::kString, full, InterpolationKind::kDiscrete},
       {"LV", DomainType::kInt, full, InterpolationKind::kStepwise},
       {"Ref", DomainType::kTime, full, InterpolationKind::kStepwise}},
      {"LId"});
  SchemePtr right = *RelationScheme::Make(
      "rgt",
      {{"RId", DomainType::kString, full, InterpolationKind::kDiscrete},
       {"RV", DomainType::kInt, full, InterpolationKind::kStepwise}},
      {"RId"});
  storage::Database db;
  EXPECT_TRUE(db.CreateRelation(left).ok());
  EXPECT_TRUE(db.CreateRelation(right).ok());
  for (int i = 0; i < 8; ++i) {
    const TimePoint b = rng.Uniform(0, 30);
    const TimePoint e = b + rng.Uniform(5, 25);
    Tuple::Builder lb(left, Span(b, std::min<TimePoint>(e, 59)));
    std::string lid = "l";  // two-step concat: GCC 12 -Wrestrict false positive
    lid += std::to_string(i);
    lb.SetConstant("LId", Value::String(std::move(lid)));
    lb.SetConstant("LV", Value::Int(rng.Uniform(0, 100)));
    lb.SetConstant("Ref", Value::Time(rng.Uniform(0, 59)));
    EXPECT_TRUE(db.Insert("lft", *std::move(lb).Build()).ok());
  }
  for (int i = 0; i < 6; ++i) {
    const TimePoint b = rng.Uniform(0, 30);
    const TimePoint e = b + rng.Uniform(5, 25);
    Tuple::Builder rb(right, Span(b, std::min<TimePoint>(e, 59)));
    std::string rid = "r";
    rid += std::to_string(i);
    rb.SetConstant("RId", Value::String(std::move(rid)));
    rb.SetConstant("RV", Value::Int(rng.Uniform(0, 100)));
    EXPECT_TRUE(db.Insert("rgt", *std::move(rb).Build()).ok());
  }
  return db;
}

/// Asserts the streaming plan and the materializing interpreter agree on
/// `hrql` (as sets of tuples).
void ExpectParity(const storage::Database& db, const std::string& hrql) {
  auto expr = ParseExpr(hrql);
  ASSERT_TRUE(expr.ok()) << hrql << ": " << expr.status().ToString();

  auto streamed = Eval(*expr, db);
  auto materialized = EvalMaterializing(*expr, db);
  ASSERT_EQ(streamed.ok(), materialized.ok())
      << hrql << ": " << streamed.status().ToString() << " vs "
      << materialized.status().ToString();
  if (!streamed.ok()) return;
  EXPECT_TRUE(streamed->EqualsAsSet(*materialized))
      << hrql << "\nstreaming:\n"
      << streamed->ToString() << "materializing:\n"
      << materialized->ToString();

  // The optimizer's rewrite of the same tree must stream to the same
  // answer too.
  ExprPtr optimized = Optimize(*expr);
  auto opt_streamed = Eval(optimized, DatabaseResolver(db));
  ASSERT_TRUE(opt_streamed.ok()) << hrql;
  EXPECT_TRUE(opt_streamed->EqualsAsSet(*materialized))
      << hrql << " (optimized: " << optimized->ToString() << ")";
}

class PlanParityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PlanParityTest, UnaryOperators) {
  SCOPED_TRACE(hrdm::testing::SeedTrace(kSeedEnv, GetParam()));
  auto db = RandomDb(GetParam());
  ExpectParity(db, "r0");
  ExpectParity(db, "timeslice(r0, {[10,40]})");
  ExpectParity(db, "timeslice(r0, {[0,4],[50,59]})");
  ExpectParity(db, "select_if(r0, A0 >= 50, exists)");
  ExpectParity(db, "select_if(r0, A1 < 30, forall)");
  ExpectParity(db, "select_if(r0, A0 >= 50, forall, {[5,25]})");
  ExpectParity(db, "select_when(r0, A0 >= 50)");
  ExpectParity(db, "project(r0, Id, A1)");
  ExpectParity(db, "project(r0, A0)");
  ExpectParity(db, "dynslice(r0, Ref)");
}

TEST_P(PlanParityTest, SetOperators) {
  SCOPED_TRACE(hrdm::testing::SeedTrace(kSeedEnv, GetParam()));
  auto db = RandomDb(GetParam());
  ExpectParity(db, "union(r0, r1)");
  ExpectParity(db, "intersect(r0, r1)");
  ExpectParity(db, "minus(r0, r1)");
  ExpectParity(db, "ounion(r0, r1)");
  ExpectParity(db, "ointersect(r0, r1)");
  ExpectParity(db, "ominus(r0, r1)");
}

TEST_P(PlanParityTest, ProductsAndJoins) {
  SCOPED_TRACE(hrdm::testing::SeedTrace(kSeedEnv, GetParam()));
  auto db = JoinDb(GetParam());
  ExpectParity(db, "product(lft, rgt)");
  ExpectParity(db, "join(lft, rgt, LV >= RV)");
  ExpectParity(db, "join(lft, rgt, LV != RV)");
  ExpectParity(db, "natjoin(lft, rgt)");
  ExpectParity(db, "timejoin(lft, rgt, Ref)");
  ExpectParity(db, "project(join(lft, rgt, LV >= RV), LId, RId)");
  // Error parity with an empty right input: the left side's runtime error
  // must surface even though the product itself is trivially empty.
  ExpectParity(db,
               "product(select_if(lft, Bogus = 1, exists), "
               "timeslice(rgt, {[200,210]}))");
  ExpectParity(db, "product(lft, timeslice(rgt, {[200,210]}))");
}

TEST_P(PlanParityTest, ComposedPipelinesAndWindows) {
  SCOPED_TRACE(hrdm::testing::SeedTrace(kSeedEnv, GetParam()));
  auto db = RandomDb(GetParam());
  ExpectParity(db,
               "project(select_when(timeslice(r0, {[5,50]}), A0 >= 40), Id, "
               "A0)");
  ExpectParity(db, "timeslice(r0, when(select_when(r1, A0 >= 30)))");
  ExpectParity(db,
               "select_if(union(r0, r1), A0 >= 20, exists, "
               "lunion({[0,9]}, {[30,59]}))");
  ExpectParity(db, "minus(timeslice(r0, {[0,30]}), select_when(r1, A1 < 80))");
  ExpectParity(db,
               "ounion(timeslice(r0, {[0,29]}), timeslice(r0, {[30,59]}))");
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, PlanParityTest,
    ::testing::ValuesIn(hrdm::testing::SeedsFromEnv(
        kSeedEnv, {1u, 2u, 3u, 7u, 42u, 1987u})));

// ---------------------------------------------------------------------------
// Streaming guarantees.
// ---------------------------------------------------------------------------

TEST(PlanStreamingTest, DeepUnaryPipelineBuffersNothing) {
  auto db = RandomDb(42);
  // The optimizer-favored shape: project(select_when(timeslice(r, L), p), X).
  auto expr = ParseExpr(
      "project(select_when(timeslice(r0, {[5,50]}), A0 >= 20), Id, A0)");
  ASSERT_TRUE(expr.ok());
  auto plan = Plan::Lower(*expr, DatabaseResolver(db));
  ASSERT_TRUE(plan.ok());
  auto rel = plan->Drain();
  ASSERT_TRUE(rel.ok());
  EXPECT_FALSE(rel->empty());
  // No intermediate Relation was materialized anywhere in the pipeline.
  EXPECT_EQ(plan->stats().peak_buffered, 0u);
  EXPECT_EQ(plan->stats().buffered_now, 0u);
  EXPECT_GT(plan->stats().tuples_scanned, 0u);
  EXPECT_EQ(plan->stats().tuples_returned, rel->size());
}

TEST(PlanStreamingTest, LongerChainStillStreams) {
  auto db = RandomDb(7);
  auto expr = ParseExpr(
      "project(select_if(select_when(timeslice(dynslice(r0, Ref), "
      "{[0,55]}), A0 >= 10), A1 >= 0, exists), Id)");
  ASSERT_TRUE(expr.ok());
  auto plan = Plan::Lower(*expr, DatabaseResolver(db));
  ASSERT_TRUE(plan.ok());
  auto rel = plan->Drain();
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(plan->stats().peak_buffered, 0u);
}

TEST(PlanStreamingTest, BlockingOperatorsAccountForBuffering) {
  auto db = RandomDb(3);
  auto expr = ParseExpr("union(r0, r1)");
  ASSERT_TRUE(expr.ok());
  auto plan = Plan::Lower(*expr, DatabaseResolver(db));
  ASSERT_TRUE(plan.ok());
  auto rel = plan->Drain();
  ASSERT_TRUE(rel.ok());
  // Both inputs (and the result) were buffered — the counter sees them.
  EXPECT_GT(plan->stats().peak_buffered, 0u);
}

TEST(PlanStreamingTest, ProductBuffersOnlyRightInput) {
  auto db = JoinDb(11);
  auto expr = ParseExpr("product(lft, rgt)");
  ASSERT_TRUE(expr.ok());
  auto plan = Plan::Lower(*expr, DatabaseResolver(db));
  ASSERT_TRUE(plan.ok());
  auto rel = plan->Drain();
  ASSERT_TRUE(rel.ok());
  const size_t right_size = (*db.Get("rgt"))->size();
  EXPECT_EQ(plan->stats().peak_buffered, right_size);
}

TEST(PlanStreamingTest, HashJoinBuffersOnlyBuildSide) {
  auto db = JoinDb(11);
  // Equality θ on comparable int domains: the optimizer picks the hash
  // strategy and builds on the smaller input (rgt, 6 < 8 tuples).
  auto expr = ParseExpr("join(lft, rgt, LV = RV)");
  ASSERT_TRUE(expr.ok());
  auto plan = Plan::Lower(*expr, DatabaseResolver(db));
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(plan->Drain().ok());
  EXPECT_EQ(plan->stats().joins_hash, 1u);
  EXPECT_EQ(plan->stats().joins_nested_loop, 0u);
  const size_t right_size = (*db.Get("rgt"))->size();
  // Only the build side is ever buffered — not the probe side, not the
  // result.
  EXPECT_EQ(plan->stats().peak_buffered, right_size);
  // The digest partitioning tested far fewer pairs than the 8×6 product.
  const size_t left_size = (*db.Get("lft"))->size();
  EXPECT_LT(plan->stats().join_pairs_tested, left_size * right_size);
}

TEST(PlanStreamingTest, NestedLoopJoinBuffersOnlyRightInput) {
  auto db = JoinDb(11);
  // Inequality θ: no hashable pattern, nested loop (which still buffers
  // only the right input — better than draining both sides whole).
  auto expr = ParseExpr("join(lft, rgt, LV >= RV)");
  ASSERT_TRUE(expr.ok());
  auto plan = Plan::Lower(*expr, DatabaseResolver(db));
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(plan->Drain().ok());
  EXPECT_EQ(plan->stats().joins_nested_loop, 1u);
  EXPECT_EQ(plan->stats().joins_hash, 0u);
  const size_t left_size = (*db.Get("lft"))->size();
  const size_t right_size = (*db.Get("rgt"))->size();
  EXPECT_EQ(plan->stats().peak_buffered, right_size);
  // The fallback really is the full pair space.
  EXPECT_EQ(plan->stats().join_pairs_tested, left_size * right_size);
}

TEST(PlanStreamingTest, MergeStrategySelectedForTimeJoin) {
  auto db = JoinDb(11);
  auto expr = ParseExpr("timejoin(lft, rgt, Ref)");
  ASSERT_TRUE(expr.ok());
  auto plan = Plan::Lower(*expr, DatabaseResolver(db));
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(plan->Drain().ok());
  EXPECT_EQ(plan->stats().joins_merge, 1u);
  // The merge buffers both (sorted) sides, never the result.
  const size_t both =
      (*db.Get("lft"))->size() + (*db.Get("rgt"))->size();
  EXPECT_GT(plan->stats().peak_buffered, 0u);
  EXPECT_LE(plan->stats().peak_buffered, both);
}

TEST(PlanStreamingTest, ForcedStrategyFallsBackWhenIneligible) {
  auto db = JoinDb(11);
  // Forcing hash onto a non-equality θ must not mis-execute: the node is
  // ineligible and lowers to nested loop.
  auto expr = ParseExpr("join(lft, rgt, LV >= RV)");
  ASSERT_TRUE(expr.ok());
  PlanOptions options;
  options.force_join_strategy = JoinStrategy::kHash;
  auto plan = Plan::Lower(*expr, DatabaseResolver(db), options);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->stats().joins_hash, 0u);
  EXPECT_EQ(plan->stats().joins_nested_loop, 1u);
}

TEST(PlanStreamingTest, WhenWindowBufferingIsCounted) {
  auto db = RandomDb(9);
  // A when() window materializes its subquery; that buffering must be
  // visible in the outer plan's stats (the pipeline is NOT fully
  // streaming, and the counter must not pretend it is).
  auto expr = ParseExpr("timeslice(r0, when(select_when(r1, A0 >= 0)))");
  ASSERT_TRUE(expr.ok());
  auto plan = Plan::Lower(*expr, DatabaseResolver(db));
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(plan->Drain().ok());
  EXPECT_GT(plan->stats().peak_buffered, 0u);
  EXPECT_EQ(plan->stats().buffered_now, 0u);
}

TEST(PlanStreamingTest, ErrorsPropagateFromCursors) {
  auto db = RandomDb(1);
  // Unknown predicate attribute: surfaces from Next(), not Lower().
  auto expr = ParseExpr("select_if(r0, Bogus = 1, exists)");
  ASSERT_TRUE(expr.ok());
  auto plan = Plan::Lower(*expr, DatabaseResolver(db));
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan->Drain().ok());
  // Incompatible schemes: surfaces at plan-build time with the same error
  // the whole-relation operator raises.
  auto bad = ParseExpr("union(r0, project(r0, Id))");
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(Plan::Lower(*bad, DatabaseResolver(db)).ok());
}

// ---------------------------------------------------------------------------
// Copy-on-write relations.
// ---------------------------------------------------------------------------

TEST(CowRelationTest, CopySharesTuples) {
  auto db = RandomDb(5);
  const Relation* stored = *db.Get("r0");
  Relation copy = *stored;  // COW: shares every tuple
  ASSERT_EQ(copy.size(), stored->size());
  for (size_t i = 0; i < copy.size(); ++i) {
    EXPECT_EQ(copy.tuple_ptr(i).get(), stored->tuple_ptr(i).get());
  }
}

TEST(CowRelationTest, BareRelationRefDoesNotDeepCopy) {
  auto db = RandomDb(5);
  const Relation* stored = *db.Get("r0");
  auto result = hrdm::query::Run("r0", db);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), stored->size());
  for (size_t i = 0; i < result->size(); ++i) {
    // Eval on a bare kRelationRef shares the stored tuples outright.
    EXPECT_EQ(result->tuple_ptr(i).get(), stored->tuple_ptr(i).get());
  }
}

TEST(CowRelationTest, CopiedRelationUnaffectedByMutation) {
  auto db = RandomDb(5);
  Relation snapshot = **db.Get("r0");
  const size_t n = snapshot.size();
  const TuplePtr first = snapshot.tuple_ptr(0);
  // Mutating the stored relation must not disturb the snapshot.
  ASSERT_TRUE((*db.Get("r0")) != nullptr);
  storage::Database db2 = std::move(db);
  ASSERT_TRUE(db2.EndLifespan("r0", snapshot.tuple(0).KeyValues(), 1).ok());
  EXPECT_EQ(snapshot.size(), n);
  EXPECT_EQ(snapshot.tuple_ptr(0).get(), first.get());
}

}  // namespace
}  // namespace hrdm::query
