// Tests for the HRQL lexer and parser, including the ToString→Parse
// round-trip property on randomly generated expression trees.

#include "query/parser.h"

#include <gtest/gtest.h>

#include "query/lexer.h"
#include "util/random.h"

namespace hrdm::query {
namespace {

TEST(LexerTest, TokenKinds) {
  auto tokens = Tokenize(R"(emp ( ) , { } [ ] = != < <= > >= 42 -7 3.5 "s" @17)");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenKind> kinds;
  for (const Token& t : *tokens) kinds.push_back(t.kind);
  EXPECT_EQ(kinds,
            (std::vector<TokenKind>{
                TokenKind::kIdentifier, TokenKind::kLParen,
                TokenKind::kRParen, TokenKind::kComma, TokenKind::kLBrace,
                TokenKind::kRBrace, TokenKind::kLBracket,
                TokenKind::kRBracket, TokenKind::kEq, TokenKind::kNe,
                TokenKind::kLt, TokenKind::kLe, TokenKind::kGt,
                TokenKind::kGe, TokenKind::kInt, TokenKind::kInt,
                TokenKind::kDouble, TokenKind::kString, TokenKind::kTime,
                TokenKind::kEnd}));
}

TEST(LexerTest, StringEscapes) {
  auto tokens = Tokenize(R"("a\"b\\c")");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "a\"b\\c");
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("\"unterminated").ok());
  EXPECT_FALSE(Tokenize("@x").ok());
  EXPECT_FALSE(Tokenize("!x").ok());
  EXPECT_FALSE(Tokenize("#").ok());
  EXPECT_FALSE(Tokenize("1.2.3").ok());
}

TEST(ParserTest, BaseRelation) {
  auto e = ParseExpr("emp");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->kind, ExprKind::kRelationRef);
  EXPECT_EQ((*e)->relation, "emp");
}

TEST(ParserTest, SelectIfVariants) {
  auto e = ParseExpr("select_if(emp, Salary >= 30000, exists)");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->kind, ExprKind::kSelectIf);
  EXPECT_EQ((*e)->quantifier, Quantifier::kExists);
  EXPECT_EQ((*e)->window, nullptr);

  auto w = ParseExpr("select_if(emp, Salary >= 30000, forall, {[0,49]})");
  ASSERT_TRUE(w.ok());
  EXPECT_EQ((*w)->quantifier, Quantifier::kForall);
  ASSERT_NE((*w)->window, nullptr);
  EXPECT_EQ((*w)->window->literal.ToString(), "{[0,49]}");
}

TEST(ParserTest, SelectWhenWithConjunction) {
  auto e = ParseExpr(
      R"(select_when(emp, Name = "john" and Salary = 30000))");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->kind, ExprKind::kSelectWhen);
  EXPECT_EQ((*e)->predicate->ToString(),
            "Name = \"john\" AND Salary = 30000");
}

TEST(ParserTest, PredicateLiteralKinds) {
  EXPECT_TRUE(ParseExpr("select_when(r, A = 3.5)").ok());
  EXPECT_TRUE(ParseExpr("select_when(r, A = true)").ok());
  EXPECT_TRUE(ParseExpr("select_when(r, A = @17)").ok());
  EXPECT_TRUE(ParseExpr("select_when(r, A != B)").ok());
}

TEST(ParserTest, ProjectAndSlices) {
  auto p = ParseExpr("project(emp, Name, Salary)");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ((*p)->attrs, (std::vector<std::string>{"Name", "Salary"}));

  auto ts = ParseExpr("timeslice(emp, {[0,9],[20]})");
  ASSERT_TRUE(ts.ok());
  EXPECT_EQ((*ts)->window->literal.ToString(), "{[0,9],[20]}");

  auto dyn = ParseExpr("dynslice(emp, Ref)");
  ASSERT_TRUE(dyn.ok());
  EXPECT_EQ((*dyn)->attr_a, "Ref");
}

TEST(ParserTest, BinariesAndJoins) {
  EXPECT_TRUE(ParseExpr("union(a, b)").ok());
  EXPECT_TRUE(ParseExpr("ominus(a, b)").ok());
  EXPECT_TRUE(ParseExpr("product(a, b)").ok());
  auto j = ParseExpr("join(a, b, X <= Y)");
  ASSERT_TRUE(j.ok());
  EXPECT_EQ((*j)->op, CompareOp::kLe);
  EXPECT_TRUE(ParseExpr("natjoin(a, b)").ok());
  auto tj = ParseExpr("timejoin(a, b, Ref)");
  ASSERT_TRUE(tj.ok());
  EXPECT_EQ((*tj)->attr_a, "Ref");
}

TEST(ParserTest, LifespanSort) {
  auto ls = ParseLsExpr("lunion({[0,4]}, when(select_when(r, A = 1)))");
  ASSERT_TRUE(ls.ok());
  EXPECT_EQ((*ls)->kind, LsExprKind::kUnion);
  // WHEN results can parameterize TIME-SLICE (the multi-sorted algebra).
  EXPECT_TRUE(ParseExpr("timeslice(r, when(r))").ok());
  EXPECT_TRUE(
      ParseExpr("select_if(r, A = 1, exists, lintersect(when(r), {[0,5]}))")
          .ok());
}

TEST(ParserTest, EmptyLifespanLiteral) {
  auto ls = ParseLsExpr("{}");
  ASSERT_TRUE(ls.ok());
  EXPECT_TRUE((*ls)->literal.empty());
}

TEST(ParserTest, NestedComposition) {
  auto e = ParseExpr(
      "project(select_when(timeslice(union(emp, emp2), {[0,49]}), "
      "Salary > 10), Name)");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->kind, ExprKind::kProject);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseExpr("").ok());
  EXPECT_FALSE(ParseExpr("select_if(emp)").ok());
  EXPECT_FALSE(ParseExpr("project(emp)").ok());
  EXPECT_FALSE(ParseExpr("union(a)").ok());
  EXPECT_FALSE(ParseExpr("emp extra").ok());
  EXPECT_FALSE(ParseExpr("timeslice(emp, {[5,3]})").ok());
  EXPECT_FALSE(ParseExpr("select_if(emp, A = 1, sometimes)").ok());
  EXPECT_FALSE(ParseLsExpr("emp").ok());
}

TEST(ParserTest, ParseQueryTriesBothSorts) {
  auto q1 = ParseQuery("select_when(r, A = 1)");
  ASSERT_TRUE(q1.ok());
  EXPECT_TRUE(std::holds_alternative<ExprPtr>(*q1));
  auto q2 = ParseQuery("when(r)");
  ASSERT_TRUE(q2.ok());
  EXPECT_TRUE(std::holds_alternative<LsExprPtr>(*q2));
}

// --- Round-trip property ------------------------------------------------------

ExprPtr RandomExpr(Rng* rng, int depth);

LsExprPtr RandomLs(Rng* rng, int depth) {
  if (depth <= 0 || rng->Chance(0.5)) {
    std::vector<Interval> ivs;
    for (int i = 0; i < rng->Uniform(0, 2); ++i) {
      TimePoint b = rng->Uniform(0, 40);
      ivs.push_back(Interval(b, b + rng->Uniform(0, 9)));
    }
    return LsLiteral(Lifespan::FromIntervals(std::move(ivs)));
  }
  switch (rng->Uniform(0, 3)) {
    case 0:
      return WhenE(RandomExpr(rng, depth - 1));
    case 1:
      return LsBinary(LsExprKind::kUnion, RandomLs(rng, depth - 1),
                      RandomLs(rng, depth - 1));
    case 2:
      return LsBinary(LsExprKind::kIntersect, RandomLs(rng, depth - 1),
                      RandomLs(rng, depth - 1));
    default:
      return LsBinary(LsExprKind::kDifference, RandomLs(rng, depth - 1),
                      RandomLs(rng, depth - 1));
  }
}

Predicate RandomPredicate(Rng* rng) {
  const CompareOp op = static_cast<CompareOp>(rng->Uniform(0, 5));
  if (rng->Chance(0.3)) {
    return Predicate::AttrAttr("A0", op, "A1");
  }
  switch (rng->Uniform(0, 2)) {
    case 0:
      return Predicate::AttrConst("A0", op, Value::Int(rng->Uniform(0, 99)));
    case 1:
      return Predicate::AttrConst("A0", op,
                                  Value::String(rng->Identifier(4)));
    default:
      return Predicate::AttrConst("A0", op,
                                  Value::Time(rng->Uniform(0, 50)));
  }
}

ExprPtr RandomExpr(Rng* rng, int depth) {
  if (depth <= 0) return Rel("r" + std::to_string(rng->Uniform(0, 3)));
  switch (rng->Uniform(0, 9)) {
    case 0:
      return SelectIfE(RandomExpr(rng, depth - 1), RandomPredicate(rng),
                       rng->Chance(0.5) ? Quantifier::kExists
                                        : Quantifier::kForall,
                       rng->Chance(0.5) ? RandomLs(rng, depth - 1) : nullptr);
    case 1:
      return SelectWhenE(RandomExpr(rng, depth - 1), RandomPredicate(rng));
    case 2:
      return ProjectE(RandomExpr(rng, depth - 1), {"Id", "A0"});
    case 3:
      return TimeSliceE(RandomExpr(rng, depth - 1), RandomLs(rng, depth - 1));
    case 4:
      return DynSliceE(RandomExpr(rng, depth - 1), "Ref");
    case 5:
      return Binary(static_cast<ExprKind>(
                        static_cast<int>(ExprKind::kUnion) +
                        rng->Uniform(0, 6)),
                    RandomExpr(rng, depth - 1), RandomExpr(rng, depth - 1));
    case 6:
      return ThetaJoinE(RandomExpr(rng, depth - 1),
                        RandomExpr(rng, depth - 1), "A0",
                        static_cast<CompareOp>(rng->Uniform(0, 5)), "B0");
    case 7:
      return NaturalJoinE(RandomExpr(rng, depth - 1),
                          RandomExpr(rng, depth - 1));
    default:
      return TimeJoinE(RandomExpr(rng, depth - 1), RandomExpr(rng, depth - 1),
                       "Ref");
  }
}

class ParserRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserRoundTripTest, ToStringParsesBackIdentically) {
  Rng rng(GetParam());
  for (int i = 0; i < 60; ++i) {
    ExprPtr e = RandomExpr(&rng, 3);
    const std::string text = e->ToString();
    auto parsed = ParseExpr(text);
    ASSERT_TRUE(parsed.ok()) << text << " -> " << parsed.status().ToString();
    EXPECT_EQ((*parsed)->ToString(), text);
  }
  for (int i = 0; i < 30; ++i) {
    LsExprPtr e = RandomLs(&rng, 3);
    const std::string text = e->ToString();
    auto parsed = ParseLsExpr(text);
    ASSERT_TRUE(parsed.ok()) << text << " -> " << parsed.status().ToString();
    EXPECT_EQ((*parsed)->ToString(), text);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserRoundTripTest,
                         ::testing::Values(1u, 11u, 123u, 9999u));

}  // namespace
}  // namespace hrdm::query
