// Storage-level access-path indexes (storage/index.h) and their use by the
// planner: unit tests of the lifespan interval index and the value equality
// index, incremental maintenance through every Database DML mutation
// (birth, death, reincarnation, assignment, schema evolution), access-path
// selection (query/optimizer.h), and end-to-end index-scan vs full-scan
// result equality with PlanStats recording the chosen path.

#include "storage/index.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "query/executor.h"
#include "query/optimizer.h"
#include "query/plan.h"
#include "storage/database.h"
#include "test_seeds.h"
#include "util/random.h"
#include "workload/generators.h"

namespace hrdm::storage {
namespace {

using query::AccessPath;
using query::DatabasePlanOptions;
using query::DatabaseResolver;
using query::Plan;
using query::PlanOptions;

constexpr TimePoint kHorizon = 100;

SchemePtr ObjScheme() {
  const Lifespan full = Span(0, kHorizon - 1);
  return *RelationScheme::Make(
      "obj", {{"Id", DomainType::kString, full, InterpolationKind::kDiscrete},
              {"X", DomainType::kInt, full, InterpolationKind::kStepwise},
              {"Y", DomainType::kString, full, InterpolationKind::kStepwise}},
      {"Id"});
}

Tuple MakeObj(const SchemePtr& scheme, int id, const Lifespan& l, int x) {
  Tuple::Builder b(scheme, l);
  b.SetConstant("Id", Value::String("o" + std::to_string(id)));
  b.SetAt("X", l.Min(), Value::Int(x));
  b.SetAt("Y", l.Min(), Value::String("y" + std::to_string(x)));
  return *std::move(b).Build();
}

/// Reference answer for a lifespan probe: naive overlap scan.
std::vector<const Tuple*> NaiveAlive(const Relation& rel,
                                     const Lifespan& window) {
  std::vector<const Tuple*> out;
  for (const TuplePtr& t : rel.tuple_ptrs()) {
    if (!t->lifespan().Intersect(window).empty()) out.push_back(t.get());
  }
  return out;
}

bool SameTupleSet(const std::vector<TuplePtr>& got,
                  const std::vector<const Tuple*>& want) {
  if (got.size() != want.size()) return false;
  for (const TuplePtr& t : got) {
    if (std::find(want.begin(), want.end(), t.get()) == want.end()) {
      return false;
    }
  }
  return true;
}

// --- LifespanIndex -----------------------------------------------------------

TEST(LifespanIndexTest, ProbeMatchesNaiveOverlapScan) {
  SchemePtr scheme = ObjScheme();
  Relation rel(scheme);
  ASSERT_TRUE(rel.Insert(MakeObj(scheme, 0, Span(0, 9), 1)).ok());
  ASSERT_TRUE(rel.Insert(MakeObj(scheme, 1, Span(5, 20), 2)).ok());
  ASSERT_TRUE(rel.Insert(MakeObj(scheme, 2, Span(30, 40), 3)).ok());
  // A fragmented (reincarnation-shaped) lifespan.
  ASSERT_TRUE(
      rel.Insert(MakeObj(scheme, 3, Span(2, 4).Union(Span(50, 60)), 4)).ok());

  LifespanIndex index;
  index.Rebuild(rel);
  EXPECT_EQ(index.entry_count(), 5u);  // 3 single intervals + 1 fragmented

  for (const Lifespan& w :
       {Span(0, 3), Span(10, 29), Span(41, 49), Span(55, 99),
        Lifespan::Point(5), Span(0, kHorizon - 1), Lifespan()}) {
    EXPECT_TRUE(SameTupleSet(index.Probe(w), NaiveAlive(rel, w)))
        << "window " << w.ToString();
  }
}

TEST(LifespanIndexTest, IncrementalAddRemoveTracksRebuild) {
  SchemePtr scheme = ObjScheme();
  Relation rel(scheme);
  Rng rng(7);
  LifespanIndex incremental;
  for (int i = 0; i < 40; ++i) {
    const TimePoint b = rng.Uniform(0, kHorizon - 10);
    ASSERT_TRUE(
        rel.Insert(MakeObj(scheme, i, Span(b, b + rng.Uniform(0, 9)), i)).ok());
    incremental.Add(rel.tuple_ptr(rel.size() - 1));
  }
  // Remove a third of them.
  for (int i = 0; i < 40; i += 3) {
    incremental.Remove(rel.tuple_ptr(i));
  }
  Relation remaining(scheme);
  for (size_t i = 0; i < rel.size(); ++i) {
    if (i % 3 != 0) {
      ASSERT_TRUE(remaining.Insert(rel.tuple_ptr(i)).ok());
    }
  }
  for (TimePoint b = 0; b < kHorizon; b += 11) {
    const Lifespan w = Span(b, b + 6);
    EXPECT_TRUE(SameTupleSet(incremental.Probe(w), NaiveAlive(remaining, w)))
        << "window " << w.ToString();
  }
}

// --- ValueIndex --------------------------------------------------------------

TEST(ValueIndexTest, ConstantTuplesBucketVaryingTuplesFallBack) {
  SchemePtr scheme = ObjScheme();
  Relation rel(scheme);
  ASSERT_TRUE(rel.Insert(MakeObj(scheme, 0, Span(0, 9), 5)).ok());
  ASSERT_TRUE(rel.Insert(MakeObj(scheme, 1, Span(0, 9), 5)).ok());
  ASSERT_TRUE(rel.Insert(MakeObj(scheme, 2, Span(0, 9), 8)).ok());
  {
    // X varies over the lifespan: must be returned by *every* probe.
    Tuple::Builder b(scheme, Span(0, 9));
    b.SetConstant("Id", Value::String("vary"));
    b.SetAt("X", 0, Value::Int(5));
    b.SetAt("X", 6, Value::Int(8));
    b.SetAt("Y", 0, Value::String("y"));
    ASSERT_TRUE(rel.Insert(*std::move(b).Build()).ok());
  }

  ValueIndex index(*scheme->RequireIndex("X"));
  index.Rebuild(rel);
  EXPECT_EQ(index.entry_count(), 4u);
  EXPECT_EQ(index.Varying().size(), 1u);

  EXPECT_EQ(index.Probe(Value::Int(5)).size(), 3u);   // two constants + vary
  EXPECT_EQ(index.Probe(Value::Int(8)).size(), 2u);   // one constant + vary
  EXPECT_EQ(index.Probe(Value::Int(42)).size(), 1u);  // vary only
  // Numeric digests agree across int/double (the hash-join convention).
  EXPECT_EQ(index.Probe(Value::Double(5.0)).size(), 3u);
}

TEST(ValueIndexTest, RemoveAndReplaceKeepBucketsExact) {
  SchemePtr scheme = ObjScheme();
  Relation rel(scheme);
  ASSERT_TRUE(rel.Insert(MakeObj(scheme, 0, Span(0, 9), 5)).ok());
  ASSERT_TRUE(rel.Insert(MakeObj(scheme, 1, Span(0, 9), 5)).ok());
  ValueIndex index(*scheme->RequireIndex("X"));
  index.Rebuild(rel);
  index.Remove(rel.tuple_ptr(0));
  EXPECT_EQ(index.entry_count(), 1u);
  EXPECT_EQ(index.Probe(Value::Int(5)).size(), 1u);
  index.Remove(rel.tuple_ptr(1));
  EXPECT_EQ(index.entry_count(), 0u);
  EXPECT_TRUE(index.Probe(Value::Int(5)).empty());
  EXPECT_TRUE(index.buckets().empty());
}

// --- access-path choice ------------------------------------------------------

query::IndexCatalogFn TestIndexCatalog(bool lifespan,
                                       std::vector<std::string> attrs) {
  return [lifespan, attrs](std::string_view relation)
             -> std::optional<query::IndexInfo> {
    if (relation != "obj") return std::nullopt;
    return query::IndexInfo{lifespan, attrs};
  };
}

query::CardinalityFn TestCardinality(size_t n) {
  return [n](std::string_view) { return std::optional<size_t>(n); };
}

TEST(ChooseAccessPathTest, SargableSelectIfPicksValueIndex) {
  auto expr = query::SelectIfE(
      query::Rel("obj"),
      Predicate::AttrConst("X", CompareOp::kEq, Value::Int(5)),
      Quantifier::kExists);
  auto choice = query::ChooseAccessPath(*expr, TestIndexCatalog(false, {"X"}),
                                        TestCardinality(10000));
  EXPECT_EQ(choice.path, AccessPath::kValueIndex);
  EXPECT_TRUE(choice.value_eligible);
  EXPECT_EQ(choice.attr, "X");
  ASSERT_TRUE(choice.key.has_value());
  EXPECT_EQ(choice.key->ToString(), Value::Int(5).ToString());
}

TEST(ChooseAccessPathTest, ConjunctionFindsTheIndexedEqualityConjunct) {
  auto pred = Predicate::And(
      {Predicate::AttrConst("Y", CompareOp::kLt, Value::String("q")),
       Predicate::AttrConst("X", CompareOp::kEq, Value::Int(3))});
  auto expr = query::SelectWhenE(query::Rel("obj"), pred);
  auto choice = query::ChooseAccessPath(*expr, TestIndexCatalog(false, {"X"}),
                                        TestCardinality(10000));
  EXPECT_EQ(choice.path, AccessPath::kValueIndex);
  EXPECT_EQ(choice.attr, "X");
}

TEST(ChooseAccessPathTest, ForallAndNonEqualityStayOnFullScan) {
  // forall: vacuous truth on empty quantification domains makes candidate
  // pruning unsound.
  auto forall = query::SelectIfE(
      query::Rel("obj"),
      Predicate::AttrConst("X", CompareOp::kEq, Value::Int(5)),
      Quantifier::kForall);
  EXPECT_EQ(query::ChooseAccessPath(*forall, TestIndexCatalog(true, {"X"}),
                                    TestCardinality(10000))
                .path,
            AccessPath::kFullScan);
  // Inequalities are not sargable for an equality index.
  auto range = query::SelectIfE(
      query::Rel("obj"),
      Predicate::AttrConst("X", CompareOp::kLt, Value::Int(5)),
      Quantifier::kExists);
  auto choice = query::ChooseAccessPath(*range, TestIndexCatalog(false, {"X"}),
                                        TestCardinality(10000));
  EXPECT_EQ(choice.path, AccessPath::kFullScan);
  EXPECT_FALSE(choice.value_eligible);
}

TEST(ChooseAccessPathTest, TimeSliceUsesLifespanIndexAboveThreshold) {
  auto expr =
      query::TimeSliceE(query::Rel("obj"), query::LsLiteral(Span(3, 9)));
  EXPECT_EQ(query::ChooseAccessPath(*expr, TestIndexCatalog(true, {}),
                                    TestCardinality(10000))
                .path,
            AccessPath::kLifespanIndex);
  // Small relations keep the scan (but stay eligible for the force hook).
  auto small = query::ChooseAccessPath(*expr, TestIndexCatalog(true, {}),
                                       TestCardinality(10));
  EXPECT_EQ(small.path, AccessPath::kFullScan);
  EXPECT_TRUE(small.lifespan_eligible);
  // No registration, no index path.
  EXPECT_EQ(query::ChooseAccessPath(*expr, TestIndexCatalog(false, {}),
                                    TestCardinality(10000))
                .path,
            AccessPath::kFullScan);
}

// --- database maintenance + end-to-end differential --------------------------

Result<Relation> EvalForced(const Database& db, const query::ExprPtr& expr,
                            std::optional<AccessPath> force) {
  PlanOptions options = DatabasePlanOptions(db);
  options.force_access_path = force;
  HRDM_ASSIGN_OR_RETURN(Plan plan,
                        Plan::Lower(expr, DatabaseResolver(db), options));
  return plan.Drain();
}

/// Asserts index-forced evaluation matches the forced full scan for a
/// point-equality SELECT-IF/SELECT-WHEN and a TIME-SLICE window.
void ExpectIndexScanParity(const Database& db, int x_probe,
                           const Lifespan& window) {
  const auto pred =
      Predicate::AttrConst("X", CompareOp::kEq, Value::Int(x_probe));
  const query::ExprPtr queries[] = {
      query::SelectIfE(query::Rel("obj"), pred, Quantifier::kExists),
      query::SelectWhenE(query::Rel("obj"), pred),
      query::TimeSliceE(query::Rel("obj"), query::LsLiteral(window)),
      query::SelectIfE(query::Rel("obj"), pred, Quantifier::kExists,
                       query::LsLiteral(window)),
  };
  for (const query::ExprPtr& q : queries) {
    auto full = EvalForced(db, q, AccessPath::kFullScan);
    ASSERT_TRUE(full.ok()) << full.status().ToString();
    for (AccessPath path :
         {AccessPath::kValueIndex, AccessPath::kLifespanIndex}) {
      auto indexed = EvalForced(db, q, path);
      ASSERT_TRUE(indexed.ok()) << indexed.status().ToString();
      EXPECT_TRUE(full->EqualsAsSet(*indexed))
          << q->ToString() << " under " << query::AccessPathName(path)
          << "\nfull:\n"
          << full->ToString() << "\nindexed:\n"
          << indexed->ToString();
    }
  }
}

TEST(DatabaseIndexTest, DmlMaintenanceKeepsIndexScansExact) {
  Database db;
  ASSERT_TRUE(db.CreateRelation(ObjScheme()).ok());
  ASSERT_TRUE(db.CreateLifespanIndex("obj").ok());
  ASSERT_TRUE(db.CreateValueIndex("obj", "X").ok());
  SchemePtr scheme = *db.catalog().Get("obj");
  auto key = [](int i) {
    return std::vector<Value>{Value::String("o" + std::to_string(i))};
  };

  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(
        db.Insert("obj", MakeObj(scheme, i, Span(i, i + 20), i % 4)).ok());
  }
  ExpectIndexScanParity(db, 2, Span(5, 8));

  // Value reassignment inside a lifespan: o1 becomes varying (leaves its
  // digest bucket for the fallback list).
  ASSERT_TRUE(db.Assign("obj", key(1), "X", Span(10, 15), Value::Int(7)).ok());
  ExpectIndexScanParity(db, 7, Span(10, 12));
  ExpectIndexScanParity(db, 1, Span(0, 9));

  // Death: truncation re-indexes; truncation to nothing removes entirely.
  ASSERT_TRUE(db.EndLifespan("obj", key(2), 10).ok());
  ASSERT_TRUE(db.EndLifespan("obj", key(3), 3).ok());  // 3's birth chronon
  ExpectIndexScanParity(db, 3, Span(0, kHorizon - 1));

  // Reincarnation: a second lifespan interval for o4.
  ASSERT_TRUE(db.Reincarnate("obj", key(4), Span(60, 70)).ok());
  ExpectIndexScanParity(db, 0, Span(62, 65));

  // Schema evolution rebinds every tuple; indexes must rebuild.
  ASSERT_TRUE(db.AddAttribute(
                    "obj", {"Z", DomainType::kInt, Span(0, kHorizon - 1),
                            InterpolationKind::kStepwise})
                  .ok());
  ExpectIndexScanParity(db, 2, Span(5, 25));
  ASSERT_TRUE(db.CloseAttribute("obj", "Y", 40).ok());
  ExpectIndexScanParity(db, 0, Span(30, 50));
}

TEST(DatabaseIndexTest, IndexDdlValidation) {
  Database db;
  ASSERT_TRUE(db.CreateRelation(ObjScheme()).ok());
  EXPECT_FALSE(db.CreateLifespanIndex("nope").ok());
  EXPECT_FALSE(db.CreateValueIndex("obj", "NoSuchAttr").ok());
  EXPECT_EQ(db.indexes("obj"), nullptr);
  ASSERT_TRUE(db.CreateValueIndex("obj", "X").ok());
  ASSERT_NE(db.indexes("obj"), nullptr);
  EXPECT_TRUE(db.indexes("obj")->value("X") != nullptr);
  EXPECT_TRUE(db.indexes("obj")->value("Y") == nullptr);
  ASSERT_TRUE(db.catalog().Indexes("obj").has_value());
  EXPECT_FALSE(db.catalog().Indexes("obj")->lifespan);
  // Dropping the relation drops registrations and data.
  ASSERT_TRUE(db.DropRelation("obj").ok());
  EXPECT_EQ(db.indexes("obj"), nullptr);
  EXPECT_FALSE(db.catalog().Indexes("obj").has_value());
}

TEST(DatabaseIndexTest, PlanStatsRecordTheChosenPath) {
  Database db;
  ASSERT_TRUE(db.CreateRelation(ObjScheme()).ok());
  ASSERT_TRUE(db.CreateLifespanIndex("obj").ok());
  ASSERT_TRUE(db.CreateValueIndex("obj", "X").ok());
  SchemePtr scheme = *db.catalog().Get("obj");
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        db.Insert("obj", MakeObj(scheme, i, Span(i % 50, i % 50 + 5), i % 97))
            .ok());
  }

  // Above the threshold the chooser picks the value index on its own.
  auto selectif = query::SelectIfE(
      query::Rel("obj"), Predicate::AttrConst("X", CompareOp::kEq, Value::Int(7)),
      Quantifier::kExists);
  {
    auto plan = Plan::Lower(selectif, DatabaseResolver(db),
                            DatabasePlanOptions(db));
    ASSERT_TRUE(plan.ok());
    auto rel = plan->Drain();
    ASSERT_TRUE(rel.ok());
    EXPECT_EQ(plan->stats().scans_value_index, 1u);
    EXPECT_EQ(plan->stats().scans_full, 0u);
    EXPECT_GT(plan->stats().index_candidates, 0u);
    EXPECT_LT(plan->stats().index_candidates, 200u);  // actually pruned
    EXPECT_EQ(plan->stats().tuples_scanned, plan->stats().index_candidates);
  }
  auto slice = query::TimeSliceE(query::Rel("obj"),
                                 query::LsLiteral(Span(10, 12)));
  {
    auto plan =
        Plan::Lower(slice, DatabaseResolver(db), DatabasePlanOptions(db));
    ASSERT_TRUE(plan.ok());
    auto rel = plan->Drain();
    ASSERT_TRUE(rel.ok());
    EXPECT_EQ(plan->stats().scans_lifespan_index, 1u);
    EXPECT_LT(plan->stats().index_candidates, 200u);
  }
  // force_access_path = kFullScan disables indexes entirely.
  {
    PlanOptions options = DatabasePlanOptions(db);
    options.force_access_path = AccessPath::kFullScan;
    auto plan = Plan::Lower(selectif, DatabaseResolver(db), options);
    ASSERT_TRUE(plan.ok());
    EXPECT_EQ(plan->stats().scans_full, 1u);
    EXPECT_EQ(plan->stats().scans_value_index, 0u);
  }
}

// --- index-fed hash joins ----------------------------------------------------

TEST(IndexFedHashJoinTest, BuildSideServedFromValueIndex) {
  Rng rng(11);
  Database db;
  const Lifespan full = Span(0, kHorizon - 1);
  SchemePtr lft = *RelationScheme::Make(
      "lft", {{"LId", DomainType::kString, full, InterpolationKind::kDiscrete},
              {"LV", DomainType::kInt, full, InterpolationKind::kStepwise}},
      {"LId"});
  SchemePtr rgt = *RelationScheme::Make(
      "rgt", {{"RId", DomainType::kString, full, InterpolationKind::kDiscrete},
              {"RV", DomainType::kInt, full, InterpolationKind::kStepwise}},
      {"RId"});
  ASSERT_TRUE(db.CreateRelation(lft).ok());
  ASSERT_TRUE(db.CreateRelation(rgt).ok());
  for (int i = 0; i < 30; ++i) {
    Tuple::Builder lb(lft, Span(0, 40));
    lb.SetConstant("LId", Value::String("l" + std::to_string(i)));
    lb.SetAt("LV", 0, Value::Int(rng.Uniform(0, 9)));
    ASSERT_TRUE(db.Insert("lft", *std::move(lb).Build()).ok());
  }
  for (int i = 0; i < 10; ++i) {
    Tuple::Builder rb(rgt, Span(20, 60));
    rb.SetConstant("RId", Value::String("r" + std::to_string(i)));
    if (i % 3 == 0) {
      // Varying join values exercise the index's fallback list.
      rb.SetAt("RV", 20, Value::Int(rng.Uniform(0, 9)));
      rb.SetAt("RV", 45, Value::Int(rng.Uniform(0, 9)));
    } else {
      rb.SetAt("RV", 20, Value::Int(rng.Uniform(0, 9)));
    }
    ASSERT_TRUE(db.Insert("rgt", *std::move(rb).Build()).ok());
  }
  // rgt is smaller: it is the build side. Index its join attribute.
  ASSERT_TRUE(db.CreateValueIndex("rgt", "RV").ok());

  auto join = query::ThetaJoinE(query::Rel("lft"), query::Rel("rgt"), "LV",
                                CompareOp::kEq, "RV");
  Result<Relation> baseline = EvalForced(db, join, AccessPath::kFullScan);
  ASSERT_TRUE(baseline.ok());

  auto plan =
      Plan::Lower(join, DatabaseResolver(db), DatabasePlanOptions(db));
  ASSERT_TRUE(plan.ok());
  auto fed = plan->Drain();
  ASSERT_TRUE(fed.ok()) << fed.status().ToString();
  EXPECT_EQ(plan->stats().hash_builds_from_index, 1u);
  EXPECT_EQ(plan->stats().joins_hash, 1u);
  // The build side never went through a scan leaf.
  EXPECT_EQ(plan->stats().scans_full, 1u);
  EXPECT_TRUE(baseline->EqualsAsSet(*fed))
      << "baseline:\n"
      << baseline->ToString() << "\nfed:\n"
      << fed->ToString();
}

}  // namespace
}  // namespace hrdm::storage
