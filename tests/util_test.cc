// Tests for the utility substrate: Status/Result, formatting, the
// deterministic RNG, and the pretty-printer.

#include <gtest/gtest.h>

#include <set>

#include "core/relation.h"
#include "util/format.h"
#include "util/pretty.h"
#include "util/random.h"
#include "util/status.h"

namespace hrdm {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ConstraintViolation("key clash");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kConstraintViolation);
  EXPECT_EQ(s.ToString(), "constraint-violation: key clash");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_NE(StatusCodeName(static_cast<StatusCode>(c)), "unknown");
  }
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

TEST(ResultTest, ValueAndError) {
  auto ok = Half(10);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 5);
  EXPECT_EQ(ok.ValueOr(-1), 5);

  auto err = Half(7);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(err.ValueOr(-1), -1);
}

Result<int> Quarter(int x) {
  HRDM_ASSIGN_OR_RETURN(int h, Half(x));
  HRDM_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2=3 is odd
  EXPECT_FALSE(Quarter(7).ok());
}

TEST(FormatTest, Ints) {
  std::string s;
  AppendInt(&s, -42);
  AppendInt(&s, 0);
  EXPECT_EQ(s, "-420");
}

TEST(FormatTest, DoublesRoundTrip) {
  for (double d : {0.0, 1.5, -3.25, 1.0 / 3.0, 1e-9, 123456789.123}) {
    std::string s;
    AppendDouble(&s, d);
    EXPECT_EQ(std::stod(s), d) << s;
  }
}

TEST(FormatTest, QuoteUnescapeRoundTrip) {
  for (const std::string& raw :
       {std::string("plain"), std::string("with \"quotes\""),
        std::string("back\\slash"), std::string()}) {
    std::string quoted = QuoteString(raw);
    ASSERT_GE(quoted.size(), 2u);
    EXPECT_EQ(UnescapeString(
                  std::string_view(quoted).substr(1, quoted.size() - 2)),
              raw);
  }
}

TEST(FormatTest, JoinAndIdentifier) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_TRUE(IsIdentifier("abc_12"));
  EXPECT_TRUE(IsIdentifier("_x"));
  EXPECT_FALSE(IsIdentifier("1x"));
  EXPECT_FALSE(IsIdentifier("a b"));
  EXPECT_FALSE(IsIdentifier(""));
}

TEST(FormatTest, StrPrintf) {
  EXPECT_EQ(StrPrintf("%d-%s", 7, "x"), "7-x");
}

TEST(RngTest, DeterministicAndSeedSensitive) {
  Rng a(1), b(1), c(2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  bool differs = false;
  Rng a2(1);
  for (int i = 0; i < 100; ++i) {
    if (a2.Next() != c.Next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(RngTest, UniformBounds) {
  Rng rng(3);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
  EXPECT_EQ(rng.Uniform(5, 5), 5);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(PrettyTest, HistoryAndSnapshotRendering) {
  auto scheme = *RelationScheme::Make(
      "emp",
      {{"Name", DomainType::kString, Span(0, 9),
        InterpolationKind::kDiscrete},
       {"Salary", DomainType::kInt, Span(0, 9),
        InterpolationKind::kStepwise}},
      {"Name"});
  Relation r(scheme);
  Tuple::Builder b(scheme, Span(0, 9));
  b.SetConstant("Name", Value::String("john"));
  b.SetAt("Salary", 0, Value::Int(10));
  ASSERT_TRUE(r.Insert(*std::move(b).Build()).ok());

  const std::string history = RenderHistory(r);
  EXPECT_NE(history.find("lifespan"), std::string::npos);
  EXPECT_NE(history.find("john"), std::string::npos);
  EXPECT_NE(history.find("{[0,9]}"), std::string::npos);

  const std::string snap = RenderSnapshot(r, 5);
  // The stepwise model level answers 10 at t=5 even though only t=0 is
  // stored.
  EXPECT_NE(snap.find("10"), std::string::npos);
  EXPECT_NE(snap.find("@ t5"), std::string::npos);

  const std::string outside = RenderSnapshot(r, 50);
  EXPECT_EQ(outside.find("john"), std::string::npos);
}

}  // namespace
}  // namespace hrdm
