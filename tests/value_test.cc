// Tests for Value, DomainType and θ-comparison semantics.

#include "core/value.h"

#include <gtest/gtest.h>

namespace hrdm {
namespace {

TEST(ValueTest, AbsentByDefault) {
  Value v;
  EXPECT_TRUE(v.absent());
  EXPECT_EQ(v, Value());
}

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value::Bool(true).type(), DomainType::kBool);
  EXPECT_EQ(Value::Int(7).type(), DomainType::kInt);
  EXPECT_EQ(Value::Double(2.5).type(), DomainType::kDouble);
  EXPECT_EQ(Value::String("x").type(), DomainType::kString);
  EXPECT_EQ(Value::Time(9).type(), DomainType::kTime);

  EXPECT_TRUE(Value::Bool(true).AsBool());
  EXPECT_EQ(Value::Int(7).AsInt(), 7);
  EXPECT_EQ(Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::String("x").AsString(), "x");
  EXPECT_EQ(Value::Time(9).AsTime(), 9);
}

TEST(ValueTest, IntAndTimeAreDistinctDomains) {
  // The TT/TD distinction of Section 3: a time atom is not an int.
  EXPECT_NE(Value::Int(5), Value::Time(5));
  auto cmp = Compare(Value::Int(5), CompareOp::kEq, Value::Time(5));
  EXPECT_FALSE(cmp.ok());
  EXPECT_EQ(cmp.status().code(), StatusCode::kTypeError);
}

TEST(ValueTest, EqualityIsExact) {
  EXPECT_EQ(Value::Int(5), Value::Int(5));
  EXPECT_NE(Value::Int(5), Value::Int(6));
  EXPECT_NE(Value::Int(5), Value::Double(5.0));  // distinct types
  EXPECT_EQ(Value::String("ab"), Value::String("ab"));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(42).Hash(), Value::Int(42).Hash());
  EXPECT_EQ(Value::String("codd").Hash(), Value::String("codd").Hash());
  EXPECT_NE(Value::Int(42).Hash(), Value::Int(43).Hash());
  EXPECT_NE(Value::Int(5).Hash(), Value::Time(5).Hash());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::Int(-3).ToString(), "-3");
  EXPECT_EQ(Value::String("a\"b").ToString(), "\"a\\\"b\"");
  EXPECT_EQ(Value::Time(17).ToString(), "@17");
  EXPECT_EQ(Value().ToString(), "<absent>");
}

TEST(CompareTest, IntOrdering) {
  EXPECT_TRUE(*Compare(Value::Int(3), CompareOp::kLt, Value::Int(4)));
  EXPECT_TRUE(*Compare(Value::Int(4), CompareOp::kLe, Value::Int(4)));
  EXPECT_TRUE(*Compare(Value::Int(5), CompareOp::kGt, Value::Int(4)));
  EXPECT_TRUE(*Compare(Value::Int(5), CompareOp::kGe, Value::Int(5)));
  EXPECT_TRUE(*Compare(Value::Int(5), CompareOp::kNe, Value::Int(6)));
  EXPECT_FALSE(*Compare(Value::Int(5), CompareOp::kEq, Value::Int(6)));
}

TEST(CompareTest, MixedNumericComparesNumerically) {
  EXPECT_TRUE(*Compare(Value::Int(3), CompareOp::kLt, Value::Double(3.5)));
  EXPECT_TRUE(*Compare(Value::Double(3.0), CompareOp::kEq, Value::Int(3)));
}

TEST(CompareTest, StringsLexicographic) {
  EXPECT_TRUE(*Compare(Value::String("abc"), CompareOp::kLt,
                       Value::String("abd")));
  EXPECT_TRUE(*Compare(Value::String("b"), CompareOp::kGt,
                       Value::String("a")));
}

TEST(CompareTest, TimesChronological) {
  EXPECT_TRUE(*Compare(Value::Time(3), CompareOp::kLt, Value::Time(9)));
}

TEST(CompareTest, BoolOnlyEquality) {
  EXPECT_TRUE(*Compare(Value::Bool(true), CompareOp::kEq, Value::Bool(true)));
  EXPECT_TRUE(*Compare(Value::Bool(true), CompareOp::kNe,
                       Value::Bool(false)));
  auto bad = Compare(Value::Bool(true), CompareOp::kLt, Value::Bool(false));
  EXPECT_FALSE(bad.ok());
}

TEST(CompareTest, AbsentValuesError) {
  auto bad = Compare(Value(), CompareOp::kEq, Value::Int(1));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kTypeError);
}

TEST(CompareTest, CrossTypeNonNumericError) {
  auto bad = Compare(Value::String("5"), CompareOp::kEq, Value::Int(5));
  EXPECT_FALSE(bad.ok());
}

TEST(DomainTypeTest, NamesRoundTrip) {
  for (DomainType t : {DomainType::kBool, DomainType::kInt,
                       DomainType::kDouble, DomainType::kString,
                       DomainType::kTime}) {
    auto back = DomainTypeFromName(DomainTypeName(t));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, t);
  }
  EXPECT_FALSE(DomainTypeFromName("blob").ok());
}

}  // namespace
}  // namespace hrdm
