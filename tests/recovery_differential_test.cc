// Differential recovery fuzz (the property behind the crash harness):
// for random DML/DDL histories, crashing after exactly k WAL records and
// recovering must be equivalent to replaying the first k change-log
// records into a fresh in-memory database — including the rebuilt access
// paths: index-backed plans over the recovered database must answer
// exactly like full scans.
//
// 100 independent seeds by default; override with
// HRDM_RECOVERY_DIFF_SEEDS=<comma-separated> to replay one.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "query/executor.h"
#include "query/plan.h"
#include "storage/changelog.h"
#include "storage/snapshot.h"
#include "storage/storage_engine.h"
#include "storage/wal.h"
#include "storage_test_util.h"
#include "test_seeds.h"
#include "util/file.h"

namespace hrdm::storage {
namespace {

using hrdm::storage::testing::TempDir;
using hrdm::storage::testing::WorkloadRunner;

constexpr char kSeedEnv[] = "HRDM_RECOVERY_DIFF_SEEDS";
constexpr int kOps = 26;

/// Forces every access path for `expr` over `db` and requires identical
/// answers (ineligible paths fall back to the scan, so forcing is safe).
void ExpectIndexScanParity(const Database& db, const query::ExprPtr& expr) {
  auto eval = [&db, &expr](std::optional<query::AccessPath> force)
      -> Result<Relation> {
    query::PlanOptions options = query::DatabasePlanOptions(db);
    options.force_access_path = force;
    HRDM_ASSIGN_OR_RETURN(
        query::Plan plan,
        query::Plan::Lower(expr, query::DatabaseResolver(db), options));
    return plan.Drain();
  };
  auto full = eval(query::AccessPath::kFullScan);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  for (query::AccessPath path :
       {query::AccessPath::kValueIndex, query::AccessPath::kLifespanIndex}) {
    auto indexed = eval(path);
    ASSERT_TRUE(indexed.ok()) << indexed.status().ToString();
    EXPECT_TRUE(full->EqualsAsSet(*indexed))
        << expr->ToString() << " diverges under "
        << query::AccessPathName(path) << " after recovery";
  }
}

/// A few point/window probes against the recovered "obj" relation.
void ProbeRecoveredIndexes(const Database& db, Rng* rng) {
  if (!db.Get("obj").ok()) return;
  const TimePoint b = rng->Uniform(0, WorkloadRunner::kHorizon - 1);
  const Lifespan window =
      Span(b, std::min<TimePoint>(WorkloadRunner::kHorizon - 1,
                                  b + rng->Uniform(0, 20)));
  const auto x_pred = Predicate::AttrConst("X", CompareOp::kEq,
                                           Value::Int(rng->Uniform(0, 99)));
  const query::ExprPtr queries[] = {
      query::SelectIfE(query::Rel("obj"), x_pred, Quantifier::kExists),
      query::TimeSliceE(query::Rel("obj"), query::LsLiteral(window)),
  };
  for (const query::ExprPtr& q : queries) {
    ExpectIndexScanParity(db, q);
  }
}

class RecoveryDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RecoveryDifferentialTest, CrashAfterRecordKEqualsPrefixReplay) {
  const uint64_t seed = GetParam();
  SCOPED_TRACE(hrdm::testing::SeedTrace(kSeedEnv, seed));

  StorageEngine::Options off;
  off.fsync = FsyncPolicy::kOff;

  // 1. Produce a WAL from a random history.
  TempDir source("diff_src");
  {
    auto engine = StorageEngine::Open(source.path(), off);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    WorkloadRunner runner(seed);
    for (int i = 0; i < kOps; ++i) {
      const Status s = runner.Step(&*engine, i);
      if (!s.ok()) {
        // Clean domain errors only — never internal/corruption.
        EXPECT_NE(s.code(), StatusCode::kInternal) << s.ToString();
        EXPECT_NE(s.code(), StatusCode::kCorruption) << s.ToString();
      }
    }
  }
  const std::string wal_path = source.path() + "/" + WalFileName(0);
  auto full = ReadWal(wal_path);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  const std::vector<std::string>& records = full->records;
  ASSERT_GT(records.size(), 4u);  // the history exercised the engine

  // 2. Crash points: the ends plus a few seed-chosen cuts.
  Rng rng(seed * 2654435761u + 1);
  std::vector<size_t> cuts = {0, 1, records.size() / 2, records.size() - 1,
                              records.size()};
  for (int i = 0; i < 3; ++i) {
    cuts.push_back(static_cast<size_t>(rng.Uniform(
        0, static_cast<int64_t>(records.size()))));
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  TempDir crash("diff");
  const std::string crash_wal = crash.path() + "/" + WalFileName(0);
  for (const size_t k : cuts) {
    SCOPED_TRACE("crash after record " + std::to_string(k));
    // 3. A WAL holding exactly the first k records.
    std::string bytes(kWalHeader, kWalHeaderSize);
    for (size_t j = 0; j < k; ++j) bytes += FrameWalRecord(records[j]);
    ASSERT_TRUE(
        util::AtomicWriteFile(crash_wal, bytes, /*durable=*/false).ok());

    // 4. Engine recovery vs. direct prefix replay.
    auto engine = StorageEngine::Open(crash.path(), off);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    EXPECT_EQ(engine->wal_records(), k);

    Database replayed;
    for (size_t j = 0; j < k; ++j) {
      ASSERT_TRUE(ApplyLogRecord(records[j], &replayed).ok())
          << "record " << j << " failed to replay";
    }
    ASSERT_EQ(engine->db().ToString(), replayed.ToString());

    // 5. The rebuilt indexes answer exactly like scans.
    ProbeRecoveredIndexes(engine->db(), &rng);
  }
}

std::vector<uint64_t> DiffSeeds() {
  std::vector<uint64_t> defaults;
  for (uint64_t s = 1; s <= 100; ++s) defaults.push_back(s);
  return hrdm::testing::SeedsFromEnv(kSeedEnv, std::move(defaults));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecoveryDifferentialTest,
                         ::testing::ValuesIn(DiffSeeds()));

}  // namespace
}  // namespace hrdm::storage
