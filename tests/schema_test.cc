// Tests for RelationScheme = <A, K, ALS, DOM> (Section 3) and scheme
// derivation (set ops, projection, joins, evolution).

#include "core/schema.h"

#include <gtest/gtest.h>

namespace hrdm {
namespace {

const Lifespan kFull = Span(0, 99);

AttributeDef Attr(std::string name, DomainType type,
                  Lifespan ls = kFull,
                  InterpolationKind ik = InterpolationKind::kDiscrete) {
  return AttributeDef{std::move(name), type, std::move(ls), ik};
}

TEST(SchemaTest, MakeValidScheme) {
  auto s = RelationScheme::Make(
      "emp",
      {Attr("Name", DomainType::kString), Attr("Salary", DomainType::kInt)},
      {"Name"});
  ASSERT_TRUE(s.ok());
  EXPECT_EQ((*s)->name(), "emp");
  EXPECT_EQ((*s)->arity(), 2u);
  EXPECT_EQ((*s)->key(), std::vector<std::string>{"Name"});
  EXPECT_EQ((*s)->key_indices(), std::vector<size_t>{0});
  EXPECT_TRUE((*s)->IsKey(0));
  EXPECT_FALSE((*s)->IsKey(1));
  EXPECT_EQ((*s)->SchemeLifespan(), kFull);
}

TEST(SchemaTest, MakeRejectsBadNames) {
  EXPECT_FALSE(RelationScheme::Make(
                   "bad name", {Attr("A", DomainType::kInt)}, {"A"})
                   .ok());
  EXPECT_FALSE(RelationScheme::Make(
                   "r", {Attr("1bad", DomainType::kInt)}, {"1bad"})
                   .ok());
}

TEST(SchemaTest, MakeRejectsDuplicatesAndMissingKey) {
  EXPECT_FALSE(
      RelationScheme::Make("r",
                           {Attr("A", DomainType::kInt),
                            Attr("A", DomainType::kInt)},
                           {"A"})
          .ok());
  auto missing = RelationScheme::Make("r", {Attr("A", DomainType::kInt)},
                                      {"B"});
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, MakeRejectsNoAttributes) {
  EXPECT_FALSE(RelationScheme::Make("r", {}, {}).ok());
}

TEST(SchemaTest, EmptyKeyAllowedForDerivedSchemes) {
  auto s = RelationScheme::Make("derived", {Attr("A", DomainType::kInt)}, {});
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE((*s)->key().empty());
}

TEST(SchemaTest, KeyLifespanMustSpanScheme) {
  // Section 2: "the lifespan of the key attributes must be the same as the
  // lifespan of the entire relation schema".
  auto bad = RelationScheme::Make(
      "r",
      {Attr("K", DomainType::kString, Span(0, 49)),
       Attr("A", DomainType::kInt, Span(0, 99))},
      {"K"});
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kConstraintViolation);
}

TEST(SchemaTest, LinearInterpolationRequiresDouble) {
  auto bad = RelationScheme::Make(
      "r",
      {Attr("K", DomainType::kString),
       Attr("A", DomainType::kInt, kFull, InterpolationKind::kLinear)},
      {"K"});
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kTypeError);
}

TEST(SchemaTest, UnionAndMergeCompatibility) {
  auto a = *RelationScheme::Make(
      "a", {Attr("K", DomainType::kString), Attr("X", DomainType::kInt)},
      {"K"});
  auto b = *RelationScheme::Make(
      "b",
      {Attr("K", DomainType::kString, Span(10, 20)),
       Attr("X", DomainType::kInt, Span(10, 20))},
      {"K"});
  auto c = *RelationScheme::Make(
      "c", {Attr("K", DomainType::kString), Attr("X", DomainType::kInt)},
      {"K", "X"});
  auto d = *RelationScheme::Make(
      "d", {Attr("K", DomainType::kString), Attr("Y", DomainType::kInt)},
      {"K"});

  EXPECT_TRUE(a->UnionCompatibleWith(*b));  // ALS may differ
  EXPECT_TRUE(a->MergeCompatibleWith(*b));
  EXPECT_TRUE(a->UnionCompatibleWith(*c));
  EXPECT_FALSE(a->MergeCompatibleWith(*c));  // different key
  EXPECT_FALSE(a->UnionCompatibleWith(*d));  // different attribute names
}

TEST(SchemaTest, CombineUnionAndIntersectLifespans) {
  auto a = *RelationScheme::Make(
      "a",
      {Attr("K", DomainType::kString, Span(0, 49)),
       Attr("X", DomainType::kInt, Span(0, 49))},
      {"K"});
  auto b = *RelationScheme::Make(
      "b",
      {Attr("K", DomainType::kString, Span(30, 99)),
       Attr("X", DomainType::kInt, Span(30, 99))},
      {"K"});
  auto u = RelationScheme::Combine("u", *a, *b,
                                   RelationScheme::LifespanCombine::kUnion);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ((*u)->AttributeLifespan(1).ToString(), "{[0,99]}");
  auto i = RelationScheme::Combine(
      "i", *a, *b, RelationScheme::LifespanCombine::kIntersect);
  ASSERT_TRUE(i.ok());
  EXPECT_EQ((*i)->AttributeLifespan(1).ToString(), "{[30,49]}");
}

TEST(SchemaTest, ProjectKeepsKeyWhenRetained) {
  auto s = *RelationScheme::Make(
      "r",
      {Attr("K", DomainType::kString), Attr("A", DomainType::kInt),
       Attr("B", DomainType::kInt)},
      {"K"});
  auto p = s->Project({"K", "B"});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ((*p)->arity(), 2u);
  EXPECT_EQ((*p)->key(), std::vector<std::string>{"K"});
}

TEST(SchemaTest, ProjectDropsKeyBecomesKeyless) {
  auto s = *RelationScheme::Make(
      "r", {Attr("K", DomainType::kString), Attr("A", DomainType::kInt)},
      {"K"});
  auto p = s->Project({"A"});
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE((*p)->key().empty());
}

TEST(SchemaTest, ProjectRejectsUnknownAndDuplicate) {
  auto s = *RelationScheme::Make(
      "r", {Attr("K", DomainType::kString), Attr("A", DomainType::kInt)},
      {"K"});
  EXPECT_FALSE(s->Project({"Z"}).ok());
  EXPECT_FALSE(s->Project({"A", "A"}).ok());
  EXPECT_FALSE(s->Project({}).ok());
}

TEST(SchemaTest, JoinSchemeUnionsKeysAndLifespans) {
  auto a = *RelationScheme::Make(
      "a",
      {Attr("K1", DomainType::kString, Span(0, 49)),
       Attr("X", DomainType::kInt, Span(0, 49))},
      {"K1"});
  auto b = *RelationScheme::Make(
      "b",
      {Attr("K2", DomainType::kString, Span(20, 99)),
       Attr("Y", DomainType::kInt, Span(20, 99))},
      {"K2"});
  auto j = RelationScheme::JoinScheme("j", *a, *b);
  ASSERT_TRUE(j.ok());
  EXPECT_EQ((*j)->arity(), 4u);
  EXPECT_EQ((*j)->key(), (std::vector<std::string>{"K1", "K2"}));
  // Key lifespans widened to the combined scheme lifespan [0,99].
  EXPECT_EQ((*j)->AttributeLifespan(0).ToString(), "{[0,99]}");
}

TEST(SchemaTest, JoinSchemeRejectsConflictingSharedDomains) {
  auto a = *RelationScheme::Make(
      "a", {Attr("K", DomainType::kString), Attr("X", DomainType::kInt)},
      {"K"});
  auto b = *RelationScheme::Make(
      "b", {Attr("K", DomainType::kString), Attr("X", DomainType::kString)},
      {"K"});
  EXPECT_FALSE(RelationScheme::JoinScheme("j", *a, *b).ok());
}

TEST(SchemaTest, WithAttributeLifespanEvolvesScheme) {
  auto s = *RelationScheme::Make(
      "r", {Attr("K", DomainType::kString), Attr("A", DomainType::kInt)},
      {"K"});
  auto evolved = s->WithAttributeLifespan(
      "A", Lifespan::FromIntervals({Interval(0, 39), Interval(70, 99)}));
  ASSERT_TRUE(evolved.ok());
  EXPECT_EQ((*evolved)->AttributeLifespan(1).ToString(), "{[0,39],[70,99]}");
  // Key still spans the whole scheme lifespan.
  EXPECT_EQ((*evolved)->AttributeLifespan(0),
            (*evolved)->SchemeLifespan());
}

TEST(SchemaTest, ToStringMarksKeys) {
  auto s = *RelationScheme::Make(
      "emp", {Attr("Name", DomainType::kString, Span(0, 9))}, {"Name"});
  EXPECT_EQ(s->ToString(), "emp(Name*: string @{[0,9]})");
}

}  // namespace
}  // namespace hrdm
