// Directed StorageEngine tests: recovery round-trips, checkpoint rotation
// and garbage collection, torn-tail tolerance, snapshot-corruption
// fallback, index durability and the fsync policy knobs. The randomized /
// adversarial counterparts live in crash_recovery_test.cc and
// recovery_differential_test.cc.

#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "storage/snapshot.h"
#include "storage/storage_engine.h"
#include "storage/wal.h"
#include "storage_test_util.h"
#include "util/file.h"

namespace hrdm::storage {
namespace {

using hrdm::storage::testing::TempDir;

StorageEngine::Options NoFsync() {
  StorageEngine::Options options;
  options.fsync = FsyncPolicy::kOff;
  return options;
}

/// Creates "emp" (Name:string key, Sal:int) and inserts `n` employees with
/// staggered lifespans — enough state for round-trip comparisons.
void Populate(StorageEngine* engine, int n) {
  const Lifespan full = Span(0, 99);
  ASSERT_TRUE(engine
                  ->CreateRelation(
                      "emp",
                      {{"Name", DomainType::kString, full,
                        InterpolationKind::kDiscrete},
                       {"Sal", DomainType::kInt, full,
                        InterpolationKind::kStepwise}},
                      {"Name"})
                  .ok());
  auto scheme = *engine->db().catalog().Get("emp");
  for (int i = 0; i < n; ++i) {
    Tuple::Builder builder(scheme, Span(i, 50 + i));
    builder.SetConstant("Name", Value::String("e" + std::to_string(i)));
    builder.SetAt("Sal", i, Value::Int(1000 + i));
    auto t = std::move(builder).Build();
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    ASSERT_TRUE(engine->Insert("emp", *std::move(t)).ok());
  }
}

TEST(StorageEngineTest, FreshDirectoryOpensEmpty) {
  TempDir dir("engine");
  auto engine = StorageEngine::Open(dir.path() + "/db", NoFsync());
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_TRUE(engine->db().RelationNames().empty());
  EXPECT_EQ(engine->generation(), 0u);
  EXPECT_EQ(engine->wal_records(), 0u);
  // The directory itself was created, with a generation-0 WAL.
  EXPECT_TRUE(util::FileExists(engine->wal_path()));
}

TEST(StorageEngineTest, ReopenReplaysWal) {
  TempDir dir("engine");
  std::string before;
  {
    auto engine = StorageEngine::Open(dir.path(), NoFsync());
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    Populate(&*engine, 5);
    ASSERT_TRUE(
        engine->Assign("emp", {Value::String("e1")}, "Sal", Span(10, 20),
                       Value::Int(2222))
            .ok());
    ASSERT_TRUE(engine->EndLifespan("emp", {Value::String("e2")}, 30).ok());
    EXPECT_EQ(engine->wal_records(), 8u);  // create + 5 inserts + 2 DML
    before = engine->db().ToString();
  }
  auto reopened = StorageEngine::Open(dir.path(), NoFsync());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened->db().ToString(), before);
  EXPECT_EQ(reopened->wal_records(), 8u);
  EXPECT_EQ(reopened->generation(), 0u);
}

TEST(StorageEngineTest, FailedMutationsAreNotLogged) {
  TempDir dir("engine");
  auto engine = StorageEngine::Open(dir.path(), NoFsync());
  ASSERT_TRUE(engine.ok());
  Populate(&*engine, 2);
  const uint64_t records = engine->wal_records();
  const std::string before = engine->db().ToString();
  // Unknown relation, unknown key, unknown attribute: all clean failures.
  EXPECT_FALSE(engine->DropRelation("ghost").ok());
  EXPECT_FALSE(
      engine->Assign("emp", {Value::String("nobody")}, "Sal", Span(0, 1),
                     Value::Int(1))
          .ok());
  EXPECT_FALSE(engine->CreateValueIndex("emp", "Bonus").ok());
  EXPECT_EQ(engine->wal_records(), records);
  EXPECT_EQ(engine->db().ToString(), before);
}

TEST(StorageEngineTest, CheckpointRotatesGenerationAndCollectsGarbage) {
  TempDir dir("engine");
  auto engine = StorageEngine::Open(dir.path(), NoFsync());
  ASSERT_TRUE(engine.ok());
  Populate(&*engine, 4);
  const std::string old_wal = engine->wal_path();
  const std::string before = engine->db().ToString();

  ASSERT_TRUE(engine->Checkpoint().ok());
  EXPECT_EQ(engine->generation(), 1u);
  EXPECT_EQ(engine->wal_records(), 0u);
  EXPECT_TRUE(util::FileExists(engine->snapshot_path()));
  EXPECT_TRUE(util::FileExists(engine->wal_path()));
  EXPECT_FALSE(util::FileExists(old_wal));  // generation 0 collected
  EXPECT_FALSE(util::FileExists(dir.path() + "/" + SnapshotFileName(0)));
  EXPECT_EQ(engine->db().ToString(), before);

  // Post-checkpoint mutations land in the new WAL and survive reopen.
  ASSERT_TRUE(engine->EndLifespan("emp", {Value::String("e0")}, 10).ok());
  const std::string after = engine->db().ToString();
  engine = StorageEngine::Open(dir.path(), NoFsync());
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ(engine->generation(), 1u);
  EXPECT_EQ(engine->wal_records(), 1u);
  EXPECT_EQ(engine->db().ToString(), after);
}

TEST(StorageEngineTest, AutoCheckpointEveryNRecords) {
  TempDir dir("engine");
  StorageEngine::Options options = NoFsync();
  options.checkpoint_every = 4;
  auto engine = StorageEngine::Open(dir.path(), options);
  ASSERT_TRUE(engine.ok());
  Populate(&*engine, 9);  // 10 logged records => at least 2 auto-checkpoints
  EXPECT_GE(engine->generation(), 2u);
  EXPECT_LT(engine->wal_records(), 4u);
  const std::string before = engine->db().ToString();
  engine = StorageEngine::Open(dir.path(), options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ(engine->db().ToString(), before);
}

TEST(StorageEngineTest, TornWalTailIsIgnoredOnReopen) {
  TempDir dir("engine");
  std::string before;
  std::string wal_path;
  {
    auto engine = StorageEngine::Open(dir.path(), NoFsync());
    ASSERT_TRUE(engine.ok());
    Populate(&*engine, 3);
    before = engine->db().ToString();
    wal_path = engine->wal_path();
  }
  // A crash mid-append: garbage bytes after the last durable frame.
  auto bytes = util::ReadFileToString(wal_path);
  ASSERT_TRUE(bytes.ok());
  {
    auto file = util::AppendFile::Open(wal_path);
    ASSERT_TRUE(file.ok());
    // A full frame header (len=19) whose payload never fully hit disk.
    ASSERT_TRUE(
        file->Append(std::string("\x13\x00\x00\x00garbage-torn-frame", 22))
            .ok());
  }
  auto engine = StorageEngine::Open(dir.path(), NoFsync());
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ(engine->db().ToString(), before);
  // The tail was truncated away on reopen: the file is valid again.
  auto reread = util::ReadFileToString(wal_path);
  ASSERT_TRUE(reread.ok());
  EXPECT_EQ(*reread, *bytes);
}

TEST(StorageEngineTest, IndexDdlSurvivesReplayAndCheckpoint) {
  TempDir dir("engine");
  {
    auto engine = StorageEngine::Open(dir.path(), NoFsync());
    ASSERT_TRUE(engine.ok());
    Populate(&*engine, 4);
    ASSERT_TRUE(engine->CreateLifespanIndex("emp").ok());
    ASSERT_TRUE(engine->CreateValueIndex("emp", "Sal").ok());
  }
  // Recovered via WAL replay: registrations and rebuilt index data.
  auto engine = StorageEngine::Open(dir.path(), NoFsync());
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  {
    const RelationIndexes* idx = engine->db().indexes("emp");
    ASSERT_NE(idx, nullptr);
    const auto specs = engine->db().catalog().Indexes("emp");
    ASSERT_TRUE(specs.has_value());
    EXPECT_TRUE(specs->lifespan);
    EXPECT_EQ(specs->value_attrs, std::vector<std::string>{"Sal"});
  }
  // And via the snapshot path: checkpoint, reopen, same registrations.
  ASSERT_TRUE(engine->Checkpoint().ok());
  const std::string before = engine->db().ToString();
  engine = StorageEngine::Open(dir.path(), NoFsync());
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ(engine->db().ToString(), before);
  const RelationIndexes* idx = engine->db().indexes("emp");
  ASSERT_NE(idx, nullptr);
  const auto specs = engine->db().catalog().Indexes("emp");
  ASSERT_TRUE(specs.has_value());
  EXPECT_TRUE(specs->lifespan);
  EXPECT_EQ(specs->value_attrs, std::vector<std::string>{"Sal"});
}

TEST(StorageEngineTest, ForeignKeysSurviveReplayAndCheckpoint) {
  TempDir dir("engine");
  const Lifespan full = Span(0, 99);
  {
    auto engine = StorageEngine::Open(dir.path(), NoFsync());
    ASSERT_TRUE(engine.ok());
    Populate(&*engine, 2);
    ASSERT_TRUE(engine
                    ->CreateRelation("dept",
                                     {{"Mgr", DomainType::kString, full,
                                       InterpolationKind::kDiscrete}},
                                     {"Mgr"})
                    .ok());
    ASSERT_TRUE(engine->RegisterForeignKey("dept", {"Mgr"}, "emp").ok());
    ASSERT_TRUE(engine->Checkpoint().ok());
  }
  auto engine = StorageEngine::Open(dir.path(), NoFsync());
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ASSERT_EQ(engine->db().foreign_keys().size(), 1u);
  EXPECT_EQ(engine->db().foreign_keys()[0].child, "dept");
  EXPECT_EQ(engine->db().foreign_keys()[0].parent, "emp");
}

TEST(StorageEngineTest, CorruptNewestSnapshotFallsBackAGeneration) {
  TempDir dir("engine");
  std::string gen1_state;
  {
    auto engine = StorageEngine::Open(dir.path(), NoFsync());
    ASSERT_TRUE(engine.ok());
    Populate(&*engine, 3);
    ASSERT_TRUE(engine->Checkpoint().ok());  // generation 1
    gen1_state = engine->db().ToString();
  }
  // Fabricate a "newer" snapshot that is bit-rotted: copy generation 1's
  // file to generation 2 and flip a payload byte.
  const std::string gen1 = dir.path() + "/" + SnapshotFileName(1);
  const std::string gen2 = dir.path() + "/" + SnapshotFileName(2);
  auto bytes = util::ReadFileToString(gen1);
  ASSERT_TRUE(bytes.ok());
  std::string rotted = *bytes;
  rotted[rotted.size() / 2] = static_cast<char>(rotted[rotted.size() / 2] ^ 0x40);
  ASSERT_TRUE(util::AtomicWriteFile(gen2, rotted, false).ok());

  auto engine = StorageEngine::Open(dir.path(), NoFsync());
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ(engine->generation(), 1u);
  EXPECT_EQ(engine->db().ToString(), gen1_state);
}

TEST(StorageEngineTest, AllSnapshotsCorruptRefusesToOpen) {
  TempDir dir("engine");
  {
    auto engine = StorageEngine::Open(dir.path(), NoFsync());
    ASSERT_TRUE(engine.ok());
    Populate(&*engine, 2);
    ASSERT_TRUE(engine->Checkpoint().ok());
  }
  const std::string snap = dir.path() + "/" + SnapshotFileName(1);
  auto bytes = util::ReadFileToString(snap);
  ASSERT_TRUE(bytes.ok());
  std::string rotted = *bytes;
  rotted[rotted.size() - 1] = static_cast<char>(rotted[rotted.size() - 1] ^ 1);
  ASSERT_TRUE(util::AtomicWriteFile(snap, rotted, false).ok());

  auto engine = StorageEngine::Open(dir.path(), NoFsync());
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kCorruption)
      << engine.status().ToString();
}

TEST(StorageEngineTest, StaleTmpFilesAreCollectedOnOpen) {
  TempDir dir("engine");
  {
    auto engine = StorageEngine::Open(dir.path(), NoFsync());
    ASSERT_TRUE(engine.ok());
    Populate(&*engine, 1);
  }
  // A checkpoint that crashed before its rename leaves a .tmp behind.
  const std::string leftover = dir.path() + "/snapshot-0000000001.hrdm.tmp";
  ASSERT_TRUE(util::AtomicWriteFile(leftover, "half-written", false).ok());
  auto engine = StorageEngine::Open(dir.path(), NoFsync());
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_FALSE(util::FileExists(leftover));
}

TEST(StorageEngineTest, AllFsyncPoliciesRoundTrip) {
  for (FsyncPolicy policy :
       {FsyncPolicy::kOff, FsyncPolicy::kBatched, FsyncPolicy::kAlways}) {
    SCOPED_TRACE(std::string("policy ") + std::string(FsyncPolicyName(policy)));
    TempDir dir("engine");
    StorageEngine::Options options;
    options.fsync = policy;
    options.batch_bytes = 128;
    std::string before;
    {
      auto engine = StorageEngine::Open(dir.path(), options);
      ASSERT_TRUE(engine.ok()) << engine.status().ToString();
      Populate(&*engine, 3);
      ASSERT_TRUE(engine->Sync().ok());  // explicit barrier works under all
      before = engine->db().ToString();
    }
    auto engine = StorageEngine::Open(dir.path(), options);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    EXPECT_EQ(engine->db().ToString(), before);
  }
}

TEST(StorageEngineTest, SnapshotFileNamesRoundTripGenerations) {
  EXPECT_EQ(SnapshotFileName(7), "snapshot-0000000007.hrdm");
  EXPECT_EQ(WalFileName(7), "wal-0000000007.log");
  auto gen = ParseGeneration(SnapshotFileName(123), "snapshot-", ".hrdm");
  ASSERT_TRUE(gen.ok());
  EXPECT_EQ(*gen, 123u);
  EXPECT_FALSE(ParseGeneration("other.txt", "snapshot-", ".hrdm").ok());
  EXPECT_FALSE(
      ParseGeneration("snapshot-00000000xx.hrdm", "snapshot-", ".hrdm").ok());
}

}  // namespace
}  // namespace hrdm::storage
