// Temporal aggregation: directed semantics cases (time-varying COUNT/SUM/
// MIN/MAX/AVG, grouped and ungrouped, lifespan gaps, varying group keys,
// empty groups), scheme/parser validation, PlanStats accounting for the
// streaming HashAggregateCursor, and the three-way differential fuzz —
// streaming plan ≡ whole-relation kernel ≡ materializing interpreter,
// structurally identical over 100 random databases
// (HRDM_AGG_FUZZ_SEEDS=<seed> to replay one).

#include "algebra/aggregate.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "differential_util.h"
#include "query/executor.h"
#include "query/optimizer.h"
#include "query/parser.h"
#include "query/plan.h"
#include "test_seeds.h"
#include "util/random.h"
#include "workload/generators.h"

namespace hrdm {
namespace {

constexpr char kSeedEnv[] = "HRDM_AGG_FUZZ_SEEDS";

const Lifespan kFull = Span(0, 9);

/// emp(Name*, Salary, Dept) over chronons 0–9:
///  * john  — {[0,3],[6,9]} (fired and re-hired), salary 30000 then 40000,
///            dept "toys" then "tools" (a *varying* group key);
///  * mary  — [2,7], salary 30000, dept "toys";
///  * bob   — [5,9], salary 50000, dept "tools".
storage::Database EmpDb() {
  auto scheme = *RelationScheme::Make(
      "emp",
      {{"Name", DomainType::kString, kFull, InterpolationKind::kDiscrete},
       {"Salary", DomainType::kInt, kFull, InterpolationKind::kStepwise},
       {"Dept", DomainType::kString, kFull, InterpolationKind::kStepwise}},
      {"Name"});
  storage::Database db;
  EXPECT_TRUE(db.CreateRelation(scheme).ok());
  {
    Tuple::Builder b(scheme,
                     Lifespan::FromIntervals({Interval(0, 3), Interval(6, 9)}));
    b.SetConstant("Name", Value::String("john"));
    b.Set("Salary", *TemporalValue::FromSegments(
                        {{Interval(0, 3), Value::Int(30000)},
                         {Interval(6, 9), Value::Int(40000)}}));
    b.Set("Dept", *TemporalValue::FromSegments(
                      {{Interval(0, 3), Value::String("toys")},
                       {Interval(6, 9), Value::String("tools")}}));
    EXPECT_TRUE(db.Insert("emp", *std::move(b).Build()).ok());
  }
  {
    Tuple::Builder b(scheme, Span(2, 7));
    b.SetConstant("Name", Value::String("mary"));
    b.SetConstant("Salary", Value::Int(30000));
    b.SetConstant("Dept", Value::String("toys"));
    EXPECT_TRUE(db.Insert("emp", *std::move(b).Build()).ok());
  }
  {
    Tuple::Builder b(scheme, Span(5, 9));
    b.SetConstant("Name", Value::String("bob"));
    b.SetConstant("Salary", Value::Int(50000));
    b.SetConstant("Dept", Value::String("tools"));
    EXPECT_TRUE(db.Insert("emp", *std::move(b).Build()).ok());
  }
  return db;
}

Result<Relation> RunHrql(const storage::Database& db, const std::string& q) {
  return query::Run(q, db);
}

/// The single tuple of an ungrouped aggregate result.
const Tuple& OnlyTuple(const Relation& r) {
  EXPECT_EQ(r.size(), 1u);
  return r.tuple(0);
}

// --- directed semantics -------------------------------------------------------

TEST(AggregateTest, UngroupedCountIsAFunctionOfTime) {
  auto db = EmpDb();
  auto r = RunHrql(db, "aggregate(emp, count)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Tuple& t = OnlyTuple(*r);
  // Lifespan: the chronons where any employee exists.
  EXPECT_EQ(t.lifespan(), kFull);
  // Hand-computed head count: john; john+mary; mary; mary+bob;
  // john+mary+bob; john+bob.
  EXPECT_EQ(t.value(0).ToString(),
            "{[0,1]->1, [2,3]->2, [4]->1, [5]->2, [6,7]->3, [8,9]->2}");
}

TEST(AggregateTest, GroupedCountWithVaryingGroupKey) {
  auto db = EmpDb();
  auto r = RunHrql(db, "aggregate(emp, count by Dept)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->size(), 2u);  // toys, tools
  for (const Tuple& t : *r) {
    const std::string dept = t.value(0).ConstantValue().AsString();
    if (dept == "toys") {
      // john [0,3] + mary [2,7].
      EXPECT_EQ(t.lifespan(), Span(0, 7));
      EXPECT_EQ(t.value(1).ToString(), "{[0,1]->1, [2,3]->2, [4,7]->1}");
    } else {
      // john [6,9] (after his dept change — the per-chronon fallback must
      // split his lifespan across the two groups) + bob [5,9].
      EXPECT_EQ(dept, "tools");
      EXPECT_EQ(t.lifespan(), Span(5, 9));
      EXPECT_EQ(t.value(1).ToString(), "{[5]->1, [6,9]->2}");
    }
  }
}

TEST(AggregateTest, SumMinMaxAvgTimelines) {
  auto db = EmpDb();
  auto sum = RunHrql(db, "aggregate(emp, sum Salary)");
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(OnlyTuple(*sum).value(0).ValueAt(0), Value::Int(30000));
  EXPECT_EQ(OnlyTuple(*sum).value(0).ValueAt(2), Value::Int(60000));
  EXPECT_EQ(OnlyTuple(*sum).value(0).ValueAt(6), Value::Int(120000));
  EXPECT_EQ(OnlyTuple(*sum).value(0).ValueAt(8), Value::Int(90000));

  auto min = RunHrql(db, "aggregate(emp, min Salary)");
  ASSERT_TRUE(min.ok());
  EXPECT_EQ(OnlyTuple(*min).value(0).ValueAt(6), Value::Int(30000));
  EXPECT_EQ(OnlyTuple(*min).value(0).ValueAt(8), Value::Int(40000));

  auto avg = RunHrql(db, "aggregate(emp, avg Salary)");
  ASSERT_TRUE(avg.ok());
  EXPECT_EQ(OnlyTuple(*avg).value(0).ValueAt(6), Value::Double(40000.0));

  auto max = RunHrql(db, "aggregate(emp, max Salary by Dept)");
  ASSERT_TRUE(max.ok());
  ASSERT_EQ(max->size(), 2u);
  for (const Tuple& t : *max) {
    if (t.value(0).ConstantValue().AsString() == "tools") {
      EXPECT_EQ(t.value(1).ValueAt(6), Value::Int(50000));
    }
  }
}

TEST(AggregateTest, MinMaxOverStringsOrderLexicographically) {
  auto db = EmpDb();
  auto r = RunHrql(db, "aggregate(emp, min Dept)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // At chronon 6 all three are alive: min("tools","toys","tools")="tools";
  // at 4 only mary: "toys".
  EXPECT_EQ(OnlyTuple(*r).value(0).ValueAt(6), Value::String("tools"));
  EXPECT_EQ(OnlyTuple(*r).value(0).ValueAt(4), Value::String("toys"));
}

TEST(AggregateTest, EmptyRelationAggregatesToEmptyRelation) {
  auto db = EmpDb();
  // No employee satisfies the criterion, so no group is ever inhabited —
  // no zero-count row, the result relation is simply empty.
  auto r = RunHrql(db,
                   "aggregate(select_if(emp, Salary = 1, exists), count)");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
}

TEST(AggregateTest, GroupWithNowhereDefinedValueKeepsItsLifespan) {
  // Bonus has ALS [0,4]; a tuple living on [5,9] is counted alive there,
  // but contributes no Bonus value — the group exists with an empty
  // aggregate function (heterogeneous historical tuples, Figure 8).
  auto scheme = *RelationScheme::Make(
      "r",
      {{"Id", DomainType::kString, kFull, InterpolationKind::kDiscrete},
       {"Bonus", DomainType::kInt, Span(0, 4), InterpolationKind::kStepwise}},
      {"Id"});
  storage::Database db;
  ASSERT_TRUE(db.CreateRelation(scheme).ok());
  Tuple::Builder b(scheme, Span(5, 9));
  b.SetConstant("Id", Value::String("late"));
  ASSERT_TRUE(db.Insert("r", *std::move(b).Build()).ok());

  auto r = RunHrql(db, "aggregate(r, sum Bonus)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Tuple& t = OnlyTuple(*r);
  EXPECT_EQ(t.lifespan(), Span(5, 9));
  EXPECT_TRUE(t.value(0).empty());
}

TEST(AggregateTest, LifespanGapsSplitTheAggregate) {
  auto db = EmpDb();
  auto r = RunHrql(db, "aggregate(select_if(emp, Name = \"john\", exists), "
                       "count)");
  ASSERT_TRUE(r.ok());
  const Tuple& t = OnlyTuple(*r);
  // john's reincarnation gap [4,5] stays outside the result.
  EXPECT_EQ(t.lifespan(),
            Lifespan::FromIntervals({Interval(0, 3), Interval(6, 9)}));
  EXPECT_EQ(t.value(0).ToString(), "{[0,3]->1, [6,9]->1}");
}

TEST(AggregateTest, StreamDuplicatesCollapseBeforeAggregation) {
  // Projecting away the key makes the two tuples structurally identical;
  // set semantics collapse them to one, and the streaming aggregate must
  // count 1, not 2 (the set boundary inside HashAggregateCursor).
  auto scheme = *RelationScheme::Make(
      "r",
      {{"Id", DomainType::kString, kFull, InterpolationKind::kDiscrete},
       {"V", DomainType::kInt, kFull, InterpolationKind::kStepwise}},
      {"Id"});
  storage::Database db;
  ASSERT_TRUE(db.CreateRelation(scheme).ok());
  for (const char* id : {"k1", "k2"}) {
    Tuple::Builder b(scheme, kFull);
    b.SetConstant("Id", Value::String(id));
    b.SetConstant("V", Value::Int(7));
    ASSERT_TRUE(db.Insert("r", *std::move(b).Build()).ok());
  }
  auto streamed = RunHrql(db, "aggregate(project(r, V), count)");
  ASSERT_TRUE(streamed.ok());
  EXPECT_EQ(OnlyTuple(*streamed).value(0).ValueAt(0), Value::Int(1));
  auto expr = query::ParseExpr("aggregate(project(r, V), count)");
  ASSERT_TRUE(expr.ok());
  auto materialized = query::EvalMaterializing(*expr, db);
  ASSERT_TRUE(materialized.ok());
  EXPECT_TRUE(streamed->EqualsAsSet(*materialized));
}

// --- scheme & parser validation ----------------------------------------------

TEST(AggregateTest, SchemeValidation) {
  auto db = EmpDb();
  const SchemePtr scheme = (*db.Get("emp"))->scheme();
  EXPECT_FALSE(AggregateScheme(scheme, {AggregateFn::kSum, "Dept", {}}).ok());
  EXPECT_FALSE(AggregateScheme(scheme, {AggregateFn::kAvg, "Name", {}}).ok());
  EXPECT_FALSE(AggregateScheme(scheme, {AggregateFn::kCount, "Salary", {}})
                   .ok());
  EXPECT_FALSE(AggregateScheme(scheme, {AggregateFn::kSum, "", {}}).ok());
  EXPECT_FALSE(
      AggregateScheme(scheme, {AggregateFn::kCount, "", {"Nope"}}).ok());
  EXPECT_FALSE(AggregateScheme(scheme,
                               {AggregateFn::kCount, "", {"Dept", "Dept"}})
                   .ok());

  auto ok = AggregateScheme(scheme, {AggregateFn::kAvg, "Salary", {"Dept"}});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ((*ok)->arity(), 2u);
  EXPECT_EQ((*ok)->attribute(0).name, "Dept");
  EXPECT_EQ((*ok)->attribute(1).name, "avg_Salary");
  EXPECT_EQ((*ok)->attribute(1).type, DomainType::kDouble);
  EXPECT_TRUE((*ok)->key().empty());  // derived, keyless
}

TEST(AggregateTest, ParserRoundTrip) {
  for (const char* q : {
           "aggregate(emp, count)",
           "aggregate(emp, count by Dept)",
           "aggregate(emp, sum Salary)",
           "aggregate(emp, avg Salary by Dept, Name)",
           "aggregate(select_when(emp, Salary = 30000), max Salary by Dept)",
       }) {
    auto e = query::ParseExpr(q);
    ASSERT_TRUE(e.ok()) << q << ": " << e.status().ToString();
    EXPECT_EQ((*e)->ToString(), q);
    auto back = query::ParseExpr((*e)->ToString());
    ASSERT_TRUE(back.ok());
    EXPECT_TRUE(query::ExprEquals(*e, *back));
  }
  auto e = query::ParseExpr("aggregate(emp, AVG Salary BY Dept)");
  ASSERT_TRUE(e.ok());  // keywords are case-insensitive
  EXPECT_EQ((*e)->agg_fn, AggregateFn::kAvg);
  EXPECT_EQ((*e)->attr_a, "Salary");
  EXPECT_EQ((*e)->attrs, (std::vector<std::string>{"Dept"}));

  EXPECT_FALSE(query::ParseExpr("aggregate(emp)").ok());
  EXPECT_FALSE(query::ParseExpr("aggregate(emp, median Salary)").ok());
  EXPECT_FALSE(query::ParseExpr("aggregate(emp, sum)").ok());
  EXPECT_FALSE(query::ParseExpr("aggregate(emp, count by)").ok());
  // Omitted attribute: a precise parse error, not "sum of an attribute
  // named by" or a misleading "expected )".
  auto missing = query::ParseExpr("aggregate(emp, sum by Dept)");
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.status().ToString().find("attribute before 'by'"),
            std::string::npos)
      << missing.status().ToString();
}

TEST(AggregateTest, ContiguousGroupKeyFlipSplitsAtTheBoundary) {
  // Unlike john (whose dept change coincides with a lifespan gap), dave's
  // key flips mid-interval: the fallback must cut exactly at the segment
  // boundary inside one contiguous lifespan.
  auto scheme = *RelationScheme::Make(
      "r",
      {{"Id", DomainType::kString, kFull, InterpolationKind::kDiscrete},
       {"Dept", DomainType::kString, kFull, InterpolationKind::kStepwise}},
      {"Id"});
  storage::Database db;
  ASSERT_TRUE(db.CreateRelation(scheme).ok());
  Tuple::Builder b(scheme, kFull);
  b.SetConstant("Id", Value::String("dave"));
  b.Set("Dept", *TemporalValue::FromSegments(
                    {{Interval(0, 4), Value::String("a")},
                     {Interval(5, 9), Value::String("b")}}));
  ASSERT_TRUE(db.Insert("r", *std::move(b).Build()).ok());

  auto r = RunHrql(db, "aggregate(r, count by Dept)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->size(), 2u);
  for (const Tuple& t : *r) {
    const bool is_a = t.value(0).ConstantValue().AsString() == "a";
    EXPECT_EQ(t.lifespan(), is_a ? Span(0, 4) : Span(5, 9));
    EXPECT_EQ(t.value(1).ToString(),
              is_a ? "{[0,4]->1}" : "{[5,9]->1}");
  }
}

// --- plan accounting ----------------------------------------------------------

TEST(AggregateTest, PlanStatsCountGroupsAndFallbacks) {
  auto db = EmpDb();
  auto expr = query::ParseExpr("aggregate(emp, count by Dept)");
  ASSERT_TRUE(expr.ok());
  auto plan = query::Plan::Lower(*expr, query::DatabaseResolver(db),
                                 query::DatabasePlanOptions(db));
  ASSERT_TRUE(plan.ok());
  auto out = plan->Drain();
  ASSERT_TRUE(out.ok());
  const query::PlanStats& stats = plan->stats();
  EXPECT_EQ(stats.aggregates, 1u);
  EXPECT_EQ(stats.agg_groups_built, 2u);    // toys, tools
  EXPECT_EQ(stats.agg_fallback_tuples, 1u);  // john's dept changes
  EXPECT_EQ(stats.tuples_returned, 2u);
  EXPECT_EQ(stats.tuples_scanned, 3u);
  // Blocking, but all buffering is transient: the input handles are
  // released once the groups are built, and Drain took the result
  // wholesale (TakeBuffered), so nothing stays accounted.
  EXPECT_EQ(stats.buffered_now, 0u);
  // Peak: the 3 retained input handles plus the 2 result tuples.
  EXPECT_GE(stats.peak_buffered, 3u);
}

TEST(AggregateTest, GroupEstimateFeedsThePlanner) {
  auto db = EmpDb();
  auto grouped = query::ParseExpr("aggregate(emp, count by Dept)");
  auto ungrouped = query::ParseExpr("aggregate(emp, count)");
  ASSERT_TRUE(grouped.ok());
  ASSERT_TRUE(ungrouped.ok());
  const query::CardinalityFn card =
      query::CatalogCardinality(db.catalog());
  EXPECT_EQ(query::EstimateGroupCount(**ungrouped, card), 1u);
  EXPECT_GE(query::EstimateGroupCount(**grouped, card), 1u);
  // And the estimate is what the lowered plan records.
  auto plan = query::Plan::Lower(*grouped, query::DatabaseResolver(db),
                                 query::DatabasePlanOptions(db));
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->stats().agg_groups_estimated,
            query::EstimateGroupCount(**grouped, card));
}

// --- differential fuzz --------------------------------------------------------

/// Asserts the three execution paths agree structurally on `hrql`:
///  1. the streaming plan (HashAggregateCursor), swept over the batch-size
///     axis (tests/differential_util.h),
///  2. the materializing interpreter (whole-relation Aggregate inside),
///  3. the whole-relation kernel applied directly to the materialized
///     input of the aggregate node,
/// plus the optimizer-rewritten tree through the streaming path.
void ExpectAggParity(const storage::Database& db, const std::string& hrql) {
  auto expr = query::ParseExpr(hrql);
  ASSERT_TRUE(expr.ok()) << hrql << ": " << expr.status().ToString();

  auto streamed =
      hrdm::testing::RunBatchInvariant(db, *expr, query::PlanOptions{});
  auto materialized = query::EvalMaterializing(*expr, db);
  ASSERT_EQ(streamed.ok(), materialized.ok())
      << hrql << ": " << streamed.status().ToString() << " vs "
      << materialized.status().ToString();
  if (!streamed.ok()) return;
  EXPECT_TRUE(streamed->EqualsAsSet(*materialized))
      << hrql << "\nstreaming:\n"
      << streamed->ToString() << "materializing:\n"
      << materialized->ToString();

  if ((*expr)->kind == query::ExprKind::kAggregate) {
    auto input = query::EvalMaterializing((*expr)->left, db);
    ASSERT_TRUE(input.ok()) << hrql;
    AggregateSpec spec{(*expr)->agg_fn, (*expr)->attr_a, (*expr)->attrs};
    auto whole = Aggregate(*input, spec);
    ASSERT_TRUE(whole.ok()) << hrql << ": " << whole.status().ToString();
    EXPECT_TRUE(whole->EqualsAsSet(*streamed))
        << hrql << "\nwhole-relation kernel:\n"
        << whole->ToString() << "plan:\n"
        << streamed->ToString();
  }

  query::ExprPtr optimized = query::Optimize(*expr);
  auto opt_streamed =
      hrdm::testing::RunBatchInvariant(db, optimized, query::PlanOptions{});
  ASSERT_TRUE(opt_streamed.ok()) << hrql;
  EXPECT_TRUE(opt_streamed->EqualsAsSet(*materialized))
      << hrql << " (optimized: " << optimized->ToString() << ")";
}

TEST(AggregateDifferentialTest, RandomDatabases) {
  // ≥100 random databases; override seeds with HRDM_AGG_FUZZ_SEEDS=....
  for (uint64_t seed : hrdm::testing::SeedsFromEnv(
           kSeedEnv, hrdm::testing::DefaultFuzzSeeds())) {
    SCOPED_TRACE(hrdm::testing::SeedTrace(kSeedEnv, seed));
    auto db = hrdm::testing::RandomUnionCompatibleDb(seed);
    // Every function, grouped and ungrouped, over a varying group key
    // (A0/A1 change within lifespans → the per-chronon fallback), a
    // constant one (Id), and a time-valued one (Ref).
    ExpectAggParity(db, "aggregate(r0, count)");
    ExpectAggParity(db, "aggregate(r0, count by A0)");
    ExpectAggParity(db, "aggregate(r0, count by Ref)");
    ExpectAggParity(db, "aggregate(r0, sum A0)");
    ExpectAggParity(db, "aggregate(r0, sum A0 by Id)");
    ExpectAggParity(db, "aggregate(r0, avg A0)");
    ExpectAggParity(db, "aggregate(r0, avg A0 by A1)");
    ExpectAggParity(db, "aggregate(r0, min A0 by A1)");
    ExpectAggParity(db, "aggregate(r0, max A1)");
    // Composed inputs: restriction (may create stream duplicates),
    // key-dropping projection (does create them), union, slice.
    ExpectAggParity(db, "aggregate(select_when(r0, A0 <= 50), count by Id)");
    ExpectAggParity(db, "aggregate(project(r0, A0), count)");
    ExpectAggParity(db, "aggregate(union(r0, r1), count)");
    ExpectAggParity(db, "aggregate(timeslice(r0, {[10, 40]}), sum A0)");
    // Aggregates compose downstream too: slice of an aggregate.
    ExpectAggParity(db, "timeslice(aggregate(r0, count by A0), {[5, 25]})");
  }
}

}  // namespace
}  // namespace hrdm
