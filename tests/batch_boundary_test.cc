// Directed batch-boundary coverage for every batched cursor: with
// PlanOptions::batch_size = B = 4, each operator is driven over input
// sizes 0, 1, B−1, B, B+1 and 2B+1 and its root batch stream inspected
// directly through Plan::NextBatch — asserting the protocol (batches are
// never empty, never exceed B, EOS is stable) and that the collected
// output is set-equal to the materializing oracle at every size. Plus a
// selective filter that empties whole input batches mid-stream (the
// "skip, don't emit []" clause) and a probe-resumption case where one
// probe tuple's matches straddle several output batches.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "query/executor.h"
#include "query/parser.h"
#include "query/plan.h"
#include "storage/database.h"

namespace hrdm::query {
namespace {

constexpr size_t kB = 4;  // the swept batch size
const Lifespan kFull = Span(0, 9);

/// r(Id*, V) with `n` tuples: V = i, lifespans all [0,9].
storage::Database IntDb(size_t n, const char* name = "r") {
  storage::Database db;
  auto scheme = *RelationScheme::Make(
      std::string(name),
      {{"Id", DomainType::kString, kFull, InterpolationKind::kDiscrete},
       {"V", DomainType::kInt, kFull, InterpolationKind::kStepwise}},
      {"Id"});
  EXPECT_TRUE(db.CreateRelation(scheme).ok());
  for (size_t i = 0; i < n; ++i) {
    Tuple::Builder b(scheme, kFull);
    b.SetConstant("Id", Value::String(name + std::to_string(i)));
    b.SetConstant("V", Value::Int(static_cast<int64_t>(i)));
    EXPECT_TRUE(db.Insert(name, *std::move(b).Build()).ok());
  }
  return db;
}

/// Adds a second relation r2(Id2*, W) with `n` tuples, W = i (the join
/// partner: W values overlap V's).
void AddJoinPartner(storage::Database& db, size_t n) {
  auto scheme = *RelationScheme::Make(
      "r2",
      {{"Id2", DomainType::kString, kFull, InterpolationKind::kDiscrete},
       {"W", DomainType::kInt, kFull, InterpolationKind::kStepwise}},
      {"Id2"});
  ASSERT_TRUE(db.CreateRelation(scheme).ok());
  for (size_t i = 0; i < n; ++i) {
    Tuple::Builder b(scheme, kFull);
    b.SetConstant("Id2", Value::String("q" + std::to_string(i)));
    b.SetConstant("W", Value::Int(static_cast<int64_t>(i)));
    ASSERT_TRUE(db.Insert("r2", *std::move(b).Build()).ok());
  }
}

/// Drains `plan` through NextBatch, asserting the batch protocol at every
/// step, and returns the collected output as a set-semantics Relation.
Relation DrainCheckingProtocol(Plan& plan, size_t batch_size) {
  Relation out(plan.scheme());
  while (true) {
    auto batch = plan.NextBatch();
    EXPECT_TRUE(batch.ok()) << batch.status().ToString();
    if (!batch.ok() || *batch == nullptr) break;
    EXPECT_FALSE((*batch)->empty()) << "protocol: batches are never empty";
    EXPECT_LE((*batch)->size(), batch_size)
        << "protocol: batches never exceed the configured size";
    for (TuplePtr& t : **batch) {
      EXPECT_TRUE(out.InsertDedup(std::move(t)).ok());
    }
  }
  // EOS is stable: pulling past the end keeps returning null.
  auto again = plan.NextBatch();
  EXPECT_TRUE(again.ok());
  if (again.ok()) {
    EXPECT_EQ(*again, nullptr) << "protocol: EOS must be stable";
  }
  out.set_materialized(true);
  return out;
}

/// Lowers `hrql` at batch size B, drains with protocol checks, and
/// compares against the materializing oracle.
void ExpectBoundaryClean(const storage::Database& db, const std::string& hrql,
                         const PlanOptions& extra = {}) {
  SCOPED_TRACE(hrql);
  auto expr = ParseExpr(hrql);
  ASSERT_TRUE(expr.ok()) << expr.status().ToString();
  PlanOptions options = extra;
  options.batch_size = kB;
  auto plan = Plan::Lower(*expr, DatabaseResolver(db), options);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  Relation got = DrainCheckingProtocol(*plan, kB);
  auto oracle = EvalMaterializing(*expr, db);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  EXPECT_TRUE(oracle->EqualsAsSet(got))
      << "oracle:\n"
      << oracle->ToString() << "plan:\n"
      << got.ToString();
  // Consistency of the batch counters: every returned tuple was carried by
  // some batch, and the average fill can't exceed the configured size.
  const PlanStats& stats = plan->stats();
  EXPECT_GE(stats.batch_tuples, stats.batches_emitted);  // non-empty batches
  if (stats.batches_emitted > 0) {
    EXPECT_LE(stats.batch_fill_avg(), static_cast<double>(kB));
  }
}

// Input sizes straddling every boundary of B = 4: empty stream, single
// tuple, one-less-than-full, exactly-full, one-over, and two-full-plus-one.
const size_t kSizes[] = {0, 1, kB - 1, kB, kB + 1, 2 * kB + 1};

TEST(BatchBoundaryTest, ScanCursor) {
  for (size_t n : kSizes) {
    SCOPED_TRACE("n=" + std::to_string(n));
    auto db = IntDb(n);
    ExpectBoundaryClean(db, "r");
  }
}

TEST(BatchBoundaryTest, SelectIfCursor) {
  for (size_t n : kSizes) {
    SCOPED_TRACE("n=" + std::to_string(n));
    auto db = IntDb(n);
    ExpectBoundaryClean(db, "select_if(r, V <= 100, exists)");  // all pass
    ExpectBoundaryClean(db, "select_if(r, V < 0, exists)");     // none pass
    ExpectBoundaryClean(db, "select_if(r, V <= 4, exists)");    // some pass
  }
}

TEST(BatchBoundaryTest, SelectWhenCursor) {
  for (size_t n : kSizes) {
    SCOPED_TRACE("n=" + std::to_string(n));
    auto db = IntDb(n);
    ExpectBoundaryClean(db, "select_when(r, V <= 100)");  // pass-through path
    ExpectBoundaryClean(db, "select_when(r, V < 0)");     // all dropped
    ExpectBoundaryClean(db, "select_when(r, V <= 4)");
  }
}

TEST(BatchBoundaryTest, ProjectCursor) {
  for (size_t n : kSizes) {
    SCOPED_TRACE("n=" + std::to_string(n));
    auto db = IntDb(n);
    // Key-dropping projection: structural duplicates reach the root, so
    // dedup-at-drain is also exercised at every boundary size.
    ExpectBoundaryClean(db, "project(r, V)");
    ExpectBoundaryClean(db, "project(r, Id, V)");
  }
}

TEST(BatchBoundaryTest, TimeSliceCursor) {
  for (size_t n : kSizes) {
    SCOPED_TRACE("n=" + std::to_string(n));
    auto db = IntDb(n);
    ExpectBoundaryClean(db, "timeslice(r, {[0, 9]})");  // pass-through path
    ExpectBoundaryClean(db, "timeslice(r, {[2, 5]})");  // restriction path
    ExpectBoundaryClean(db, "timeslice(r, {[20, 30]})");  // all dropped
  }
}

TEST(BatchBoundaryTest, HashEquiJoinCursor) {
  for (size_t n : kSizes) {
    SCOPED_TRACE("n=" + std::to_string(n));
    auto db = IntDb(n);
    AddJoinPartner(db, n);
    PlanOptions forced;
    forced.force_join_strategy = JoinStrategy::kHash;
    ExpectBoundaryClean(db, "join(r, r2, V = W)", forced);
  }
}

TEST(BatchBoundaryTest, HashAggregateCursor) {
  for (size_t n : kSizes) {
    SCOPED_TRACE("n=" + std::to_string(n));
    auto db = IntDb(n);
    // V % 3 isn't expressible, but V itself gives n groups (streamed out
    // of the buffered result across ⌈n/B⌉ batches) and count gives one.
    ExpectBoundaryClean(db, "aggregate(r, count by V)");
    ExpectBoundaryClean(db, "aggregate(r, count)");
  }
}

TEST(BatchBoundaryTest, SetOpCursor) {
  for (size_t n : kSizes) {
    SCOPED_TRACE("n=" + std::to_string(n));
    auto db = IntDb(n);
    // A second relation with the same attribute names, overlapping keys.
    auto scheme = *RelationScheme::Make(
        "s",
        {{"Id", DomainType::kString, kFull, InterpolationKind::kDiscrete},
         {"V", DomainType::kInt, kFull, InterpolationKind::kStepwise}},
        {"Id"});
    ASSERT_TRUE(db.CreateRelation(scheme).ok());
    for (size_t i = 0; i < n; i += 2) {
      Tuple::Builder b(scheme, kFull);
      b.SetConstant("Id", Value::String("r" + std::to_string(i)));
      b.SetConstant("V", Value::Int(static_cast<int64_t>(i)));
      ASSERT_TRUE(db.Insert("s", *std::move(b).Build()).ok());
    }
    ExpectBoundaryClean(db, "union(r, s)");
    ExpectBoundaryClean(db, "intersect(r, s)");
    ExpectBoundaryClean(db, "minus(r, s)");
  }
}

TEST(BatchBoundaryTest, FilterEmptiesWholeBatchesMidStream) {
  // 3B tuples where the middle B (V ∈ [4,7]) all fail the predicate: the
  // filter's second input batch filters to nothing and must be *skipped*,
  // not emitted empty — DrainCheckingProtocol would catch an empty batch.
  auto db = IntDb(3 * kB);
  ExpectBoundaryClean(db, "select_when(r, V < 4)");          // head survives
  ExpectBoundaryClean(db, "select_when(r, V >= 8)");         // tail survives
  ExpectBoundaryClean(db, "select_if(r, V >= 4, exists)");
  // Only the middle batch survives (V ∈ [4,7]) — both neighbors empty out.
  ExpectBoundaryClean(db, "select_when(select_when(r, V >= 4), V <= 7)");
}

TEST(BatchBoundaryTest, ProbeMatchesStraddleOutputBatches) {
  // One probe tuple matching many build tuples: r2 holds 2B+1 tuples with
  // W = 0, r holds the single tuple V = 0, so the lone probe's candidate
  // walk must suspend when the output batch fills and resume mid-bucket.
  auto db = IntDb(1);
  {
    auto scheme = *RelationScheme::Make(
        "r2",
        {{"Id2", DomainType::kString, kFull, InterpolationKind::kDiscrete},
         {"W", DomainType::kInt, kFull, InterpolationKind::kStepwise}},
        {"Id2"});
    ASSERT_TRUE(db.CreateRelation(scheme).ok());
    for (size_t i = 0; i < 2 * kB + 1; ++i) {
      Tuple::Builder b(scheme, kFull);
      b.SetConstant("Id2", Value::String("q" + std::to_string(i)));
      b.SetConstant("W", Value::Int(0));
      ASSERT_TRUE(db.Insert("r2", *std::move(b).Build()).ok());
    }
  }
  PlanOptions forced;
  forced.force_join_strategy = JoinStrategy::kHash;
  ExpectBoundaryClean(db, "join(r, r2, V = W)", forced);
  // And the transposed shape: many probes, one build tuple.
  auto db2 = IntDb(2 * kB + 1);
  AddJoinPartner(db2, 1);
  ExpectBoundaryClean(db2, "join(r2, r, W = V)", forced);
}

TEST(BatchBoundaryTest, BatchSizeOneDegeneratesToTupleAtATime) {
  auto db = IntDb(kB + 1);
  auto expr = ParseExpr("select_when(r, V <= 100)");
  ASSERT_TRUE(expr.ok());
  PlanOptions options;
  options.batch_size = 1;
  auto plan = Plan::Lower(*expr, DatabaseResolver(db), options);
  ASSERT_TRUE(plan.ok());
  Relation got = DrainCheckingProtocol(*plan, 1);
  EXPECT_EQ(got.size(), kB + 1);
  // Every batch carried exactly one tuple.
  EXPECT_EQ(plan->stats().batches_emitted, plan->stats().batch_tuples);
}

}  // namespace
}  // namespace hrdm::query
