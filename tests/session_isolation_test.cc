// Snapshot isolation of reader sessions (src/session/session.h), directed
// cases plus a single-threaded randomized suite.
//
// The contract under test: a session pins one DatabaseVersion at open, and
// every read through the session — ToString(), EncodeSnapshot(), HRQL
// queries — answers from that frozen version, byte-identically, for the
// session's whole lifetime, no matter what mutations commit meanwhile.
// The differential oracle is a private replica database decoded from the
// session's own EncodeSnapshot(): a query through the session must return
// exactly what the same query returns on the replica.
//
// The multi-threaded version of this property (N readers × M writers under
// TSan) lives in tests/concurrency_fuzz_test.cc.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "query/executor.h"
#include "session/session.h"
#include "storage/database.h"
#include "storage/storage_engine.h"
#include "tests/storage_test_util.h"
#include "tests/test_seeds.h"
#include "util/random.h"

namespace hrdm {
namespace {

using session::Session;
using storage::Database;
using storage::StorageEngine;
using storage::testing::TempDir;
using storage::testing::WorkloadRunner;

constexpr const char* kSeedEnv = "HRDM_SESSION_FUZZ_SEEDS";

// Queries exercising scan, timeslice, selection, projection and
// aggregation against the WorkloadRunner's "obj" relation. Some may fail
// cleanly after schema evolution (Y closed); failures must then be
// identical on both sides of the differential.
const std::vector<std::string>& QueryBattery() {
  static const std::vector<std::string> kQueries = {
      "obj",
      "timeslice(obj, {[5, 20]})",
      "select_if(obj, X > 50, exists)",
      "select_when(obj, X >= 0)",
      "project(obj, Id)",
      "aggregate(obj, count)",
  };
  return kQueries;
}

// One comparable string per query outcome: the full result rendering on
// success, the full status on failure.
std::string Outcome(const Result<Relation>& r) {
  return r.ok() ? "ok:\n" + r->ToString() : "error: " + r.status().ToString();
}

std::string SessionOutcome(const Session& s, const std::string& q) {
  return Outcome(s.Run(q));
}

std::string DatabaseOutcome(const Database& db, const std::string& q) {
  return Outcome(query::Run(q, db));
}

// Builds a small populated database: obj with three tuples + both indexes.
Database SeededDatabase() {
  Database db;
  WorkloadRunner workload(/*seed=*/1);
  for (int step = 0; step < 40; ++step) {
    workload.Step(&db, step);
  }
  return db;
}

TEST(SessionIsolationTest, SnapshotFrozenAcrossDml) {
  Database db = SeededDatabase();
  Session s = Session::Open(db);
  const std::string frozen = s.ToString();
  const std::string frozen_image = s.EncodeSnapshot();
  ASSERT_FALSE(frozen.empty());

  // Keep mutating through the same workload stream; the session must not
  // observe any of it.
  WorkloadRunner workload(/*seed=*/2);
  for (int step = 0; step < 60; ++step) {
    workload.Step(&db, step);
    EXPECT_EQ(s.ToString(), frozen) << "session leaked step " << step;
  }
  EXPECT_EQ(s.EncodeSnapshot(), frozen_image);
  // The live database really did move on (otherwise the test is vacuous).
  EXPECT_NE(db.ToString(), frozen);
}

TEST(SessionIsolationTest, QueriesAnswerFromTheFrozenReplica) {
  Database db = SeededDatabase();
  Session s = Session::Open(db);

  // The differential oracle: a private database decoded from the
  // session's own snapshot bytes.
  auto replica = Database::DecodeSnapshot(s.EncodeSnapshot());
  ASSERT_TRUE(replica.ok()) << replica.status().ToString();

  WorkloadRunner workload(/*seed=*/3);
  for (int step = 0; step < 50; ++step) {
    workload.Step(&db, step);
  }
  for (const std::string& q : QueryBattery()) {
    EXPECT_EQ(SessionOutcome(s, q), DatabaseOutcome(*replica, q))
        << "query diverged from frozen replica: " << q;
  }
}

TEST(SessionIsolationTest, SnapshotFrozenAcrossSchemaEvolutionAndDrop) {
  Database db = SeededDatabase();
  Session s = Session::Open(db);
  const std::string frozen = s.ToString();

  ASSERT_TRUE(db.CloseAttribute("obj", "Y", 30).ok());
  EXPECT_EQ(s.ToString(), frozen);
  ASSERT_TRUE(
      db.AddAttribute("obj", {"W", DomainType::kInt,
                              Span(0, WorkloadRunner::kHorizon - 1),
                              InterpolationKind::kStepwise})
          .ok());
  EXPECT_EQ(s.ToString(), frozen);
  ASSERT_TRUE(db.DropRelation("obj").ok());
  EXPECT_EQ(s.ToString(), frozen);
  // The pinned version still resolves the dropped relation.
  EXPECT_TRUE(s.Get("obj").ok());
  EXPECT_FALSE(db.Get("obj").ok());
}

TEST(SessionIsolationTest, SnapshotFrozenAcrossIndexDdl) {
  Database db = SeededDatabase();
  Session s = Session::Open(db);
  const std::string frozen = s.ToString();
  ASSERT_TRUE(db.CreateValueIndex("obj", "Y").ok());
  // Index DDL publishes a new version (registrations are part of the
  // rendering); the pinned one keeps the old registration set.
  EXPECT_EQ(s.ToString(), frozen);
  EXPECT_NE(db.ToString(), frozen);
}

TEST(SessionIsolationTest, VersionIdsAreMonotonicPerCommit) {
  Database db;
  Session s0 = Session::Open(db);
  EXPECT_EQ(s0.version_id(), 0u);

  WorkloadRunner workload(/*seed=*/4);
  uint64_t last = 0;
  for (int step = 0; step < 40; ++step) {
    const Status status = workload.Step(&db, step);
    const uint64_t id = Session::Open(db).version_id();
    if (status.ok()) {
      EXPECT_EQ(id, last + 1) << "committed step " << step
                              << " must bump the version id by one";
    } else {
      EXPECT_EQ(id, last) << "failed step " << step
                          << " must not publish a version";
    }
    last = id;
  }
}

TEST(SessionIsolationTest, RefreshAdoptsTheCurrentVersion) {
  Database db = SeededDatabase();
  Session s = Session::Open(db);
  const std::string frozen = s.ToString();
  ASSERT_TRUE(db.CreateValueIndex("obj", "Y").ok());
  EXPECT_EQ(s.ToString(), frozen);
  s.Refresh(db);
  EXPECT_EQ(s.ToString(), db.ToString());
  EXPECT_NE(s.ToString(), frozen);
}

TEST(SessionIsolationTest, EngineSessionsPinAcrossLoggedMutations) {
  TempDir dir("session");
  StorageEngine::Options options;
  options.fsync = storage::FsyncPolicy::kOff;
  auto engine = StorageEngine::Open(dir.path(), options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  WorkloadRunner workload(/*seed=*/5);
  for (int step = 0; step < 30; ++step) {
    workload.Step(&*engine, step);
  }
  Session s = Session::Open(*engine);
  const std::string frozen = s.ToString();
  auto replica = Database::DecodeSnapshot(s.EncodeSnapshot());
  ASSERT_TRUE(replica.ok());

  for (int step = 30; step < 70; ++step) {
    workload.Step(&*engine, step);
    ASSERT_EQ(s.ToString(), frozen) << "engine session leaked step " << step;
  }
  for (const std::string& q : QueryBattery()) {
    EXPECT_EQ(SessionOutcome(s, q), DatabaseOutcome(*replica, q)) << q;
  }
  s.Refresh(*engine);
  EXPECT_EQ(s.ToString(), engine->db().ToString());
}

// Randomized single-threaded sweep: sessions open at random workload
// steps, stay open across arbitrary later mutations, and are re-validated
// (rendering + full query battery against their open-time expectations)
// after every single step until they close.
class SessionFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SessionFuzzTest, SessionsStayFrozenThroughRandomWorkloads) {
  SCOPED_TRACE(hrdm::testing::SeedTrace(kSeedEnv, GetParam()));
  Rng rng(GetParam() ^ 0x5e55104u);  // decorrelated from the workload rng
  Database db;
  WorkloadRunner workload(GetParam());

  struct OpenSession {
    Session session;
    std::string frozen;
    std::vector<std::string> battery;  // one outcome per QueryBattery()
    int opened_at;
  };
  std::vector<OpenSession> open;

  constexpr int kSteps = 120;
  for (int step = 0; step < kSteps; ++step) {
    workload.Step(&db, step);

    // Every open session must still render byte-identically and answer
    // every query exactly as at open time.
    for (const OpenSession& os : open) {
      ASSERT_EQ(os.session.ToString(), os.frozen)
          << "session opened at step " << os.opened_at << " leaked step "
          << step;
      for (size_t qi = 0; qi < QueryBattery().size(); ++qi) {
        ASSERT_EQ(SessionOutcome(os.session, QueryBattery()[qi]),
                  os.battery[qi])
            << "query '" << QueryBattery()[qi] << "' of session opened at "
            << os.opened_at << " drifted by step " << step;
      }
    }

    if (step >= 3 && open.size() < 4 && rng.Chance(0.15)) {
      Session s = Session::Open(db);
      std::string frozen = s.ToString();
      std::vector<std::string> battery;
      battery.reserve(QueryBattery().size());
      for (const std::string& q : QueryBattery()) {
        battery.push_back(SessionOutcome(s, q));
      }
      // The open-time battery must itself match a replica decoded from
      // the session's snapshot bytes (queries really answer from the
      // pinned version, not the live database).
      auto replica = Database::DecodeSnapshot(s.EncodeSnapshot());
      ASSERT_TRUE(replica.ok()) << replica.status().ToString();
      for (size_t qi = 0; qi < QueryBattery().size(); ++qi) {
        ASSERT_EQ(battery[qi], DatabaseOutcome(*replica, QueryBattery()[qi]))
            << QueryBattery()[qi];
      }
      open.push_back(OpenSession{std::move(s), std::move(frozen),
                                 std::move(battery), step});
    }
    if (!open.empty() && rng.Chance(0.08)) {
      open.erase(open.begin() + static_cast<long>(rng.Index(open.size())));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SessionFuzzTest,
                         ::testing::ValuesIn(hrdm::testing::SeedsFromEnv(
                             kSeedEnv, {1, 2, 3, 7, 42, 31415})));

}  // namespace
}  // namespace hrdm
