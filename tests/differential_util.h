#ifndef HRDM_TESTS_DIFFERENTIAL_UTIL_H_
#define HRDM_TESTS_DIFFERENTIAL_UTIL_H_

// The shared differential-oracle harness of the randomized suites
// (tests/join_differential_test.cc, tests/parallel_differential_test.cc,
// tests/aggregate_test.cc): one place for
//
//  * random database generation — the join-shaped four-relation database
//    (`ra`/`rb` equi-join partners, `na`/`nb` natural-join partners with an
//    occasionally time-varying shared attribute `D`) and the
//    union-compatible pair (`r0`/`r1`) the aggregate fuzz uses;
//  * the batch-size axis — every plan execution is swept over
//    `PlanOptions::batch_size` ∈ {auto, 1, 7, 1024} and the rendered
//    output asserted *exactly equal* (`ToString()`, not set-equal) across
//    the axis: batching is a pure performance knob, and because every
//    cursor emits in input order and every parallel merge happens in
//    morsel order, even emission order must not depend on it. The `auto`
//    point doubles as the `HRDM_BATCH_SIZE` hook — CI jobs can re-run the
//    whole differential surface at any batch size without a rebuild. With
//    fuzz relations of 10–15 tuples, sizes 1 and 7 also cover the
//    input > batch regime ISSUE'd for the axis;
//  * the oracle comparison — every swept result is checked set-equal
//    against `EvalMaterializing` (the semantic oracle the plan layer must
//    never drift from) and optionally a whole-relation-API reference.
//
// Seed plumbing stays in tests/test_seeds.h (SeedsFromEnv/SeedTrace): each
// suite keeps its own env var so a red run is a one-command repro.

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "query/executor.h"
#include "query/parser.h"
#include "query/plan.h"
#include "storage/database.h"
#include "test_seeds.h"
#include "util/random.h"
#include "workload/generators.h"

namespace hrdm::testing {

/// The batch sizes every differential execution is swept over. 0 = auto
/// (kDefaultBatchSize, or the HRDM_BATCH_SIZE override — the env hook CI
/// uses to re-run the suites at arbitrary sizes); 1 degenerates to
/// tuple-at-a-time, 7 exercises ragged batch boundaries everywhere, 1024
/// is the production default (input ≪ batch on fuzz relations).
inline std::vector<size_t> BatchSizeAxis() { return {0, 1, 7, 1024}; }

/// Lowers and drains `expr` under `options` at every batch size on the
/// axis, asserting the rendered output is byte-identical across the sweep,
/// and returns the result of the first (auto) point. Any lowering or
/// execution error is returned unswallowed — callers decide whether an
/// error is expected (ASSERT_TRUE(result.ok()) or parity-of-errors).
inline Result<Relation> RunBatchInvariant(const storage::Database& db,
                                          const query::ExprPtr& expr,
                                          const query::PlanOptions& options) {
  std::optional<Relation> first;
  size_t first_batch = 0;
  for (size_t batch : BatchSizeAxis()) {
    query::PlanOptions swept = options;
    swept.batch_size = batch;
    HRDM_ASSIGN_OR_RETURN(
        query::Plan plan,
        query::Plan::Lower(expr, query::DatabaseResolver(db), swept));
    HRDM_ASSIGN_OR_RETURN(Relation out, plan.Drain());
    if (!first) {
      first = std::move(out);
      first_batch = batch;
      continue;
    }
    EXPECT_EQ(out.ToString(), first->ToString())
        << "batch size " << batch << " diverges from batch size "
        << first_batch << " — batching must not change results";
  }
  return std::move(*first);
}

/// String-query convenience overload.
inline Result<Relation> RunBatchInvariant(const storage::Database& db,
                                          const std::string& hrql,
                                          const query::PlanOptions& options) {
  HRDM_ASSIGN_OR_RETURN(query::ExprPtr expr, query::ParseExpr(hrql));
  return RunBatchInvariant(db, expr, options);
}

/// The oracle check shared by every suite: `got` (a plan-layer result for
/// `hrql`) must be set-equal to the materializing interpreter's answer,
/// and to `reference` (a whole-relation-API answer) when one is supplied.
inline void ExpectMatchesOracle(const storage::Database& db,
                                const std::string& hrql, const Relation& got,
                                const Relation* reference) {
  auto expr = query::ParseExpr(hrql);
  ASSERT_TRUE(expr.ok()) << hrql << ": " << expr.status().ToString();
  auto materialized = query::EvalMaterializing(*expr, db);
  ASSERT_TRUE(materialized.ok())
      << hrql << ": " << materialized.status().ToString();
  EXPECT_TRUE(materialized->EqualsAsSet(got))
      << hrql << "\nmaterializing oracle:\n"
      << materialized->ToString() << "plan:\n"
      << got.ToString();
  if (reference != nullptr) {
    EXPECT_TRUE(reference->EqualsAsSet(got))
        << hrql << "\nwhole-relation API:\n"
        << reference->ToString() << "plan:\n"
        << got.ToString();
  }
}

/// Tuple counts for RandomJoinStyleDb — the only knobs on which the join
/// and parallel differential databases historically differed.
struct JoinStyleDbConfig {
  size_t ra_tuples = 10;
  size_t na_tuples = 8;
  size_t nb_tuples = 7;
};

/// The four-relation random database both join-shaped suites fuzz over:
///  * `ra(Id*, A0, Ref)` — int attribute A0, time-valued Ref (dynamic
///    TIME-SLICE / TIME-JOIN driver), scan & restriction input;
///  * `rb(Id2*, B0)` — disjoint attribute names, value space overlapping
///    A0's (selective equi-matches);
///  * `na(NId*, D, X)` / `nb(MId*, D, Y)` — one shared attribute D for
///    NATURAL-JOIN and GROUP-BY, where ~30% of D values flip mid-lifespan
///    (the digest fallback paths, under every strategy and parallelism).
inline storage::Database RandomJoinStyleDb(uint64_t seed,
                                           const JoinStyleDbConfig& cfg) {
  Rng rng(seed);
  storage::Database db;
  const TimePoint horizon = 60;
  const Lifespan full = Span(0, horizon - 1);

  workload::RandomRelationConfig ca;
  ca.name = "ra";
  ca.num_tuples = cfg.ra_tuples;
  ca.num_value_attrs = 1;
  ca.with_time_attribute = true;
  ca.key_prefix = "x";
  auto ra = *workload::MakeRandomRelation(&rng, ca);
  EXPECT_TRUE(db.CreateRelation(ra.scheme()).ok());
  for (const Tuple& t : ra) EXPECT_TRUE(db.Insert("ra", t).ok());

  // rb mirrors another random relation under renamed (disjoint) attributes.
  workload::RandomRelationConfig cb = ca;
  cb.name = "rb";
  cb.key_prefix = "y";
  cb.with_time_attribute = false;
  auto src = *workload::MakeRandomRelation(&rng, cb);
  auto rb_scheme = *RelationScheme::Make(
      "rb",
      {{"Id2", DomainType::kString, full, InterpolationKind::kDiscrete},
       {"B0", DomainType::kInt, full, InterpolationKind::kStepwise}},
      {"Id2"});
  EXPECT_TRUE(db.CreateRelation(rb_scheme).ok());
  for (const Tuple& t : src) {
    std::vector<TemporalValue> vals = {t.value(0), t.value(1)};
    EXPECT_TRUE(
        db.Insert("rb", Tuple::FromParts(rb_scheme, t.lifespan(), vals))
            .ok());
  }

  // Natural-join pair sharing attribute D (small int range → real matches).
  auto na_scheme = *RelationScheme::Make(
      "na",
      {{"NId", DomainType::kString, full, InterpolationKind::kDiscrete},
       {"D", DomainType::kInt, full, InterpolationKind::kStepwise},
       {"X", DomainType::kInt, full, InterpolationKind::kStepwise}},
      {"NId"});
  auto nb_scheme = *RelationScheme::Make(
      "nb",
      {{"MId", DomainType::kString, full, InterpolationKind::kDiscrete},
       {"D", DomainType::kInt, full, InterpolationKind::kStepwise},
       {"Y", DomainType::kInt, full, InterpolationKind::kStepwise}},
      {"MId"});
  EXPECT_TRUE(db.CreateRelation(na_scheme).ok());
  EXPECT_TRUE(db.CreateRelation(nb_scheme).ok());
  auto fill = [&](const char* rel, const SchemePtr& scheme, const char* key,
                  const char* val, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      const TimePoint b = rng.Uniform(0, horizon - 10);
      const TimePoint e = std::min<TimePoint>(b + rng.Uniform(3, 25),
                                              horizon - 1);
      Tuple::Builder tb(scheme, Span(b, e));
      std::string id(key);
      id += std::to_string(i);
      tb.SetConstant(scheme->attribute(0).name, Value::String(std::move(id)));
      if (rng.Chance(0.3)) {
        // A D that changes value mid-lifespan: exercises the hash join's
        // and the grouping kernel's varying-attribute fallbacks on random
        // data.
        const TimePoint mid = b + (e - b) / 2;
        std::vector<Segment> segs;
        segs.push_back({Interval(b, mid), Value::Int(rng.Uniform(0, 4))});
        if (mid + 1 <= e) {
          segs.push_back(
              {Interval(mid + 1, e), Value::Int(rng.Uniform(0, 4))});
        }
        tb.Set("D", *TemporalValue::FromSegments(std::move(segs)));
      } else {
        tb.SetConstant("D", Value::Int(rng.Uniform(0, 4)));
      }
      tb.SetConstant(val, Value::Int(rng.Uniform(0, 99)));
      EXPECT_TRUE(db.Insert(rel, *std::move(tb).Build()).ok());
    }
  };
  fill("na", na_scheme, "n", "X", cfg.na_tuples);
  fill("nb", nb_scheme, "m", "Y", cfg.nb_tuples);
  return db;
}

/// Two union-compatible random relations r0/r1 (overlapping key spaces,
/// random ALS gaps, varying int attributes, a time-valued Ref) — the
/// aggregate fuzz database.
inline storage::Database RandomUnionCompatibleDb(uint64_t seed) {
  Rng rng(seed);
  storage::Database db;
  for (int i = 0; i < 2; ++i) {
    workload::RandomRelationConfig config;
    config.name = "r" + std::to_string(i);
    config.num_tuples = 15;
    config.num_value_attrs = 2;
    config.horizon = 60;
    config.with_time_attribute = true;
    config.random_attribute_lifespans = true;
    config.key_space = 22;  // overlap between r0 and r1
    auto rel = workload::MakeRandomRelation(&rng, config);
    EXPECT_TRUE(rel.ok());
    EXPECT_TRUE(db.CreateRelation(rel->scheme()).ok());
    for (const Tuple& t : *rel) {
      EXPECT_TRUE(db.Insert(config.name, t).ok());
    }
  }
  return db;
}

/// The default 100-seed list (1..100) the randomized suites share.
inline std::vector<uint64_t> DefaultFuzzSeeds() {
  std::vector<uint64_t> seeds(100);
  for (size_t i = 0; i < seeds.size(); ++i) seeds[i] = i + 1;
  return seeds;
}

}  // namespace hrdm::testing

#endif  // HRDM_TESTS_DIFFERENTIAL_UTIL_H_
