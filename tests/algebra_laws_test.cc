// Cross-operator algebraic laws, verified directly at the algebra level
// (the optimizer tests verify them through the query layer; this suite
// pins the operators themselves, including laws about the object-based
// operators that the paper implies but never states).

#include <gtest/gtest.h>

#include "algebra/join.h"
#include "algebra/project.h"
#include "algebra/select.h"
#include "algebra/setops.h"
#include "algebra/timeslice.h"
#include "algebra/when.h"
#include "util/random.h"
#include "workload/generators.h"

namespace hrdm {
namespace {

class AlgebraLawsTest : public ::testing::TestWithParam<uint64_t> {};

std::pair<Relation, Relation> Pair(uint64_t seed, double overlap = 0.6) {
  Rng rng(seed);
  workload::RandomRelationConfig config;
  config.num_tuples = 12;
  config.num_value_attrs = 2;
  return *workload::MakeMergeablePair(&rng, config, overlap);
}

Relation One(uint64_t seed) {
  Rng rng(seed);
  workload::RandomRelationConfig config;
  config.num_tuples = 12;
  config.num_value_attrs = 2;
  config.random_attribute_lifespans = true;
  return *workload::MakeRandomRelation(&rng, config);
}

TEST_P(AlgebraLawsTest, TimesliceFusion) {
  Relation r = One(GetParam());
  const Lifespan l1 = Lifespan::FromIntervals({Interval(0, 25),
                                               Interval(40, 55)});
  const Lifespan l2 = Span(10, 45);
  auto nested = *TimeSlice(*TimeSlice(r, l1), l2);
  auto fused = *TimeSlice(r, l1.Intersect(l2));
  EXPECT_TRUE(nested.EqualsAsSet(fused));
}

TEST_P(AlgebraLawsTest, TimesliceSelectWhenCommute) {
  Relation r = One(GetParam() * 3 + 1);
  Predicate p = Predicate::AttrConst("A0", CompareOp::kLe, Value::Int(60));
  const Lifespan l = Span(5, 40);
  auto slice_first = *SelectWhen(*TimeSlice(r, l), p);
  auto select_first = *TimeSlice(*SelectWhen(r, p), l);
  EXPECT_TRUE(slice_first.EqualsAsSet(select_first));
}

TEST_P(AlgebraLawsTest, SelectWhenCommutativity) {
  Relation r = One(GetParam() * 5 + 2);
  Predicate p1 = Predicate::AttrConst("A0", CompareOp::kLe, Value::Int(70));
  Predicate p2 = Predicate::AttrConst("A1", CompareOp::kGe, Value::Int(20));
  auto a = *SelectWhen(*SelectWhen(r, p1), p2);
  auto b = *SelectWhen(*SelectWhen(r, p2), p1);
  EXPECT_TRUE(a.EqualsAsSet(b));
}

TEST_P(AlgebraLawsTest, ProjectFusion) {
  Relation r = One(GetParam() * 7 + 3);
  auto nested = *Project(*Project(r, {"Id", "A0", "A1"}), {"Id", "A1"});
  auto fused = *Project(r, {"Id", "A1"});
  EXPECT_TRUE(nested.EqualsAsSet(fused));
}

TEST_P(AlgebraLawsTest, ObjectUnionCommutes) {
  auto [r1, r2] = Pair(GetParam() * 11 + 4);
  auto a = *UnionO(r1, r2);
  auto b = *UnionO(r2, r1);
  EXPECT_TRUE(a.EqualsAsSet(b));
}

TEST_P(AlgebraLawsTest, ObjectUnionIdempotent) {
  auto [r1, r2] = Pair(GetParam() * 13 + 5);
  auto m1 = *MaterializeRelation(r1);
  auto self = *UnionO(r1, r1);
  EXPECT_TRUE(self.EqualsAsSet(m1));
}

TEST_P(AlgebraLawsTest, ObjectIntersectCommutesOnLifespans) {
  // ∩ₒ value functions come from the left operand by definition, but on
  // mergeable pairs (consistent values) the operator is fully commutative.
  auto [r1, r2] = Pair(GetParam() * 17 + 6);
  auto a = *IntersectO(r1, r2);
  auto b = *IntersectO(r2, r1);
  EXPECT_TRUE(a.EqualsAsSet(b));
}

TEST_P(AlgebraLawsTest, ObjectOpsPartitionLifespans) {
  // For an object present on both sides: its −ₒ lifespan and ∩ₒ lifespan
  // partition its r1 lifespan (disjoint, union = t1.l).
  auto [r1, r2] = Pair(GetParam() * 19 + 7);
  auto diff = *DifferenceO(r1, r2);
  auto inter = *IntersectO(r1, r2);
  for (const Tuple& t1 : r1) {
    auto d = diff.FindByKey(t1.KeyValues());
    auto i = inter.FindByKey(t1.KeyValues());
    Lifespan covered;
    if (d.has_value()) covered = covered.Union(diff.tuple(*d).lifespan());
    if (i.has_value()) covered = covered.Union(inter.tuple(*i).lifespan());
    if (d.has_value() && i.has_value()) {
      EXPECT_FALSE(diff.tuple(*d).lifespan().Overlaps(
          inter.tuple(*i).lifespan()));
    }
    // The partner exists iff the key exists in r2 (mergeable workloads).
    if (r2.FindByKey(t1.KeyValues()).has_value()) {
      EXPECT_EQ(covered, t1.lifespan());
    } else {
      ASSERT_TRUE(d.has_value());
      EXPECT_EQ(diff.tuple(*d).lifespan(), t1.lifespan());
    }
  }
}

TEST_P(AlgebraLawsTest, WhenDistributesOverUnion) {
  auto [r1, r2] = Pair(GetParam() * 23 + 8);
  auto u = *Union(r1, r2);
  EXPECT_EQ(When(u), When(r1).Union(When(r2)));
  auto uo = *UnionO(r1, r2);
  EXPECT_EQ(When(uo), When(r1).Union(When(r2)));
}

TEST_P(AlgebraLawsTest, WhenOfTimesliceIsBounded) {
  Relation r = One(GetParam() * 29 + 9);
  const Lifespan l = Lifespan::FromIntervals({Interval(3, 18),
                                              Interval(33, 44)});
  auto sliced = *TimeSlice(r, l);
  EXPECT_TRUE(l.ContainsAll(When(sliced)));
  EXPECT_EQ(When(sliced), When(r).Intersect(l));
}

TEST_P(AlgebraLawsTest, SelectIfForallImpliesExistsOnCoveredScopes) {
  // Whenever the window actually intersects the tuple's lifespan, ∀ is
  // strictly stronger than ∃.
  Relation r = One(GetParam() * 31 + 10);
  Predicate p = Predicate::AttrConst("A0", CompareOp::kLe, Value::Int(50));
  const Lifespan window = Span(0, 59);  // covers the whole horizon
  auto forall = *SelectIf(r, p, Quantifier::kForall, window);
  auto exists = *SelectIf(r, p, Quantifier::kExists, window);
  for (const Tuple& t : forall) {
    if (t.lifespan().Overlaps(window)) {
      EXPECT_TRUE(exists.FindByKey(t.KeyValues()).has_value());
    }
  }
}

TEST_P(AlgebraLawsTest, ProductLifespanIsUnionOfOperands) {
  Rng rng(GetParam() * 37 + 11);
  workload::RandomRelationConfig c1;
  c1.name = "pa";
  c1.num_tuples = 5;
  c1.num_value_attrs = 1;
  c1.key_prefix = "x";
  Relation r1 = *workload::MakeRandomRelation(&rng, c1);
  auto scheme2 = *RelationScheme::Make(
      "pb",
      {{"Id2", DomainType::kString, Span(0, 59),
        InterpolationKind::kDiscrete},
       {"B0", DomainType::kInt, Span(0, 59), InterpolationKind::kStepwise}},
      {"Id2"});
  Relation r2(scheme2);
  Relation src = *workload::MakeRandomRelation(&rng, c1);
  for (const Tuple& t : src) {
    std::vector<TemporalValue> vals = {t.value(0), t.value(1)};
    ASSERT_TRUE(
        r2.Insert(Tuple::FromParts(scheme2, t.lifespan(), vals)).ok());
  }
  auto product = *CartesianProduct(r1, r2);
  // Every product tuple's lifespan is t1.l ∪ t2.l for some pair; the
  // relation-level WHEN is therefore the union of the operand WHENs
  // (when both operands are non-empty).
  if (!r1.empty() && !r2.empty()) {
    EXPECT_EQ(When(product), When(r1).Union(When(r2)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlgebraLawsTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 42u, 1000u));

}  // namespace
}  // namespace hrdm
