// The pointwise-semantics property suite: the deepest correctness check in
// the repository.
//
// HRDM's operators are defined pointwise over chronons, so for *arbitrary*
// historical relations (not just the T={now} degenerate case of
// consistency_test.cc) the following commutation must hold at every
// chronon t:
//
//     Snapshot(Op_H(r...), t)  ==  Op_classic(Snapshot(r, t)...)
//
// for SELECT-WHEN, TIME-SLICE, PROJECT, ∪, θ-JOIN and NATURAL-JOIN. We
// verify it on random heterogeneous relations at every critical chronon
// (where any value or lifespan changes) plus probes in between.

#include <gtest/gtest.h>

#include "algebra/join.h"
#include "algebra/project.h"
#include "algebra/select.h"
#include "algebra/setops.h"
#include "algebra/timeslice.h"
#include "classic/classic.h"
#include "constraints/constraints.h"
#include "util/random.h"
#include "workload/generators.h"

namespace hrdm {
namespace {

using classic::Snapshot;
using classic::SnapshotRelation;

/// Chronons worth probing: every change point of r (and r2) plus midpoints.
std::vector<TimePoint> Probes(const Relation& r, const Relation* r2 = nullptr) {
  auto pts = *CriticalChronons(r, {});
  if (r2 != nullptr) {
    auto more = *CriticalChronons(*r2, {});
    pts.insert(pts.end(), more.begin(), more.end());
  }
  std::sort(pts.begin(), pts.end());
  pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
  // Cap the probe count to keep the suite fast.
  if (pts.size() > 60) {
    std::vector<TimePoint> sampled;
    for (size_t i = 0; i < pts.size(); i += pts.size() / 60 + 1) {
      sampled.push_back(pts[i]);
    }
    pts = std::move(sampled);
  }
  return pts;
}

Relation MakeRandom(uint64_t seed, const std::string& name,
                    const std::string& key_prefix, size_t attrs = 2) {
  Rng rng(seed);
  workload::RandomRelationConfig config;
  config.name = name;
  config.num_tuples = 10;
  config.num_value_attrs = attrs;
  config.random_attribute_lifespans = true;
  config.key_prefix = key_prefix;
  return *workload::MakeRandomRelation(&rng, config);
}

class SnapshotSemanticsTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SnapshotSemanticsTest, SelectWhenCommutes) {
  Relation r = MakeRandom(GetParam(), "r", "k");
  Predicate p = Predicate::AttrConst("A0", CompareOp::kLe, Value::Int(50));
  auto selected = *SelectWhen(r, p);
  for (TimePoint t : Probes(r)) {
    auto lhs = *Snapshot(selected, t);
    auto rhs = *classic::Select(*Snapshot(r, t), "A0", CompareOp::kLe,
                                Value::Int(50));
    EXPECT_TRUE(lhs.EqualsAsSet(rhs)) << "t=" << t;
  }
}

TEST_P(SnapshotSemanticsTest, TimeSliceCommutes) {
  Relation r = MakeRandom(GetParam() * 3 + 1, "r", "k");
  const Lifespan window =
      Lifespan::FromIntervals({Interval(5, 25), Interval(40, 50)});
  auto sliced = *TimeSlice(r, window);
  for (TimePoint t : Probes(r)) {
    auto lhs = *Snapshot(sliced, t);
    if (window.Contains(t)) {
      EXPECT_TRUE(lhs.EqualsAsSet(*Snapshot(r, t))) << "t=" << t;
    } else {
      EXPECT_TRUE(lhs.empty()) << "t=" << t;
    }
  }
}

TEST_P(SnapshotSemanticsTest, ProjectCommutes) {
  Relation r = MakeRandom(GetParam() * 5 + 2, "r", "k");
  auto projected = *Project(r, {"Id", "A1"});
  for (TimePoint t : Probes(r)) {
    auto lhs = *Snapshot(projected, t);
    auto rhs = *classic::Project(*Snapshot(r, t), {"Id", "A1"});
    EXPECT_TRUE(lhs.EqualsAsSet(rhs)) << "t=" << t;
  }
}

TEST_P(SnapshotSemanticsTest, UnionCommutes) {
  // Same key space so histories genuinely collide.
  Relation r1 = MakeRandom(GetParam() * 7 + 3, "r1", "k");
  Relation r2 = MakeRandom(GetParam() * 7 + 4, "r1", "k");
  auto unioned = *Union(r1, r2);
  for (TimePoint t : Probes(r1, &r2)) {
    auto lhs = *Snapshot(unioned, t);
    auto rhs = *classic::Union(*Snapshot(r1, t), *Snapshot(r2, t));
    EXPECT_TRUE(lhs.EqualsAsSet(rhs)) << "t=" << t;
  }
}

TEST_P(SnapshotSemanticsTest, ObjectUnionSnapshotsLikeUnion) {
  // ∪ₒ differs from ∪ only in tuple *packaging* (merged objects); at any
  // single chronon the visible rows are identical when the operands are
  // mergeable.
  Rng rng(GetParam() * 11 + 5);
  workload::RandomRelationConfig config;
  config.num_tuples = 12;
  auto pair = *workload::MakeMergeablePair(&rng, config, 0.6);
  const auto& [r1, r2] = pair;
  auto std_union = *Union(r1, r2);
  auto obj_union = *UnionO(r1, r2);
  for (TimePoint t : Probes(r1, &r2)) {
    auto a = *Snapshot(std_union, t);
    auto b = *Snapshot(obj_union, t);
    EXPECT_TRUE(a.EqualsAsSet(b)) << "t=" << t;
  }
}

TEST_P(SnapshotSemanticsTest, ThetaJoinCommutes) {
  Relation r1 = MakeRandom(GetParam() * 13 + 6, "ra", "x", 1);
  // Disjoint attribute names for the second operand.
  auto scheme2 = *RelationScheme::Make(
      "rb",
      {{"Id2", DomainType::kString, Span(0, 59),
        InterpolationKind::kDiscrete},
       {"B0", DomainType::kInt, Span(0, 59), InterpolationKind::kStepwise}},
      {"Id2"});
  Relation r2(scheme2);
  Relation src = MakeRandom(GetParam() * 13 + 7, "rb_src", "y", 1);
  for (const Tuple& t : src) {
    std::vector<TemporalValue> vals = {t.value(0), t.value(1)};
    ASSERT_TRUE(
        r2.Insert(Tuple::FromParts(scheme2, t.lifespan(), vals)).ok());
  }
  auto joined = *ThetaJoin(r1, "A0", CompareOp::kLe, r2, "B0");
  for (TimePoint t : Probes(r1, &r2)) {
    auto lhs = *Snapshot(joined, t);
    auto rhs = *classic::ThetaJoin(*Snapshot(r1, t), "A0", CompareOp::kLe,
                                   *Snapshot(r2, t), "B0");
    // The historical join clips *all* attributes to the matching lifespan,
    // so rows agree exactly.
    EXPECT_TRUE(lhs.EqualsAsSet(rhs)) << "t=" << t;
  }
}

TEST_P(SnapshotSemanticsTest, WhenIsExactlyTheNonEmptySnapshots) {
  Relation r = MakeRandom(GetParam() * 17 + 8, "r", "k");
  const Lifespan ls = r.LS();
  for (TimePoint t : Probes(r)) {
    auto snap = *Snapshot(r, t);
    EXPECT_EQ(!snap.empty(), ls.Contains(t)) << "t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotSemanticsTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

}  // namespace
}  // namespace hrdm
