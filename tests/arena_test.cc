// util::Arena, the per-plan bump allocator: alignment of raw allocations,
// Reset-to-reuse economics (steady state holds no new memory), the
// large-allocation fallback, finalizer ordering, the aliasing-TuplePtr
// integration PlanContext::AdoptTuple relies on — and, under the ASan CI
// job, a death test proving use-after-Reset faults instead of silently
// reading recycled memory (the manual poisoning contract).

#include "util/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

namespace hrdm::util {
namespace {

TEST(ArenaTest, AllocationsHonorAlignment) {
  Arena arena;
  for (size_t alignment : {1u, 2u, 4u, 8u, 16u, 64u}) {
    for (size_t bytes : {1u, 3u, 7u, 24u, 100u}) {
      void* p = arena.Allocate(bytes, alignment);
      ASSERT_NE(p, nullptr);
      EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % alignment, 0u)
          << bytes << " bytes at alignment " << alignment;
      std::memset(p, 0xAB, bytes);  // the storage must be writable
    }
  }
  EXPECT_GT(arena.allocations(), 0u);
  EXPECT_GT(arena.bytes_allocated(), 0u);
}

TEST(ArenaTest, CreateRunsFinalizersInReverseOrder) {
  std::vector<int> destroyed;
  struct Tracked {
    int id;
    std::vector<int>* log;
    ~Tracked() { log->push_back(id); }
  };
  {
    Arena arena;
    for (int i = 0; i < 3; ++i) {
      arena.Create<Tracked>(i, &destroyed);  // constructed in place
    }
    EXPECT_TRUE(destroyed.empty());
  }
  EXPECT_EQ(destroyed, (std::vector<int>{2, 1, 0}));
}

TEST(ArenaTest, ResetReusesRetainedBlocks) {
  Arena arena;
  // Fill a few blocks' worth of strings (non-trivially destructible, so
  // finalizers run too).
  auto fill = [&] {
    for (int i = 0; i < 2000; ++i) {
      arena.Create<std::string>(100, 'x');
    }
  };
  fill();
  const size_t reserved_after_first = arena.bytes_reserved();
  const size_t blocks_after_first = arena.block_count();
  EXPECT_GT(reserved_after_first, 0u);
  for (int round = 0; round < 3; ++round) {
    arena.Reset();
    EXPECT_EQ(arena.bytes_allocated(), 0u);
    EXPECT_EQ(arena.allocations(), 0u);
    fill();
    // Steady state: the same workload fits in the blocks retained by the
    // first round — Reset-reuse is allocation-free at the block level.
    EXPECT_EQ(arena.bytes_reserved(), reserved_after_first);
    EXPECT_EQ(arena.block_count(), blocks_after_first);
  }
}

TEST(ArenaTest, LargeAllocationFallback) {
  Arena arena(/*block_bytes=*/1024);
  // Small allocations establish the retained bump blocks first.
  for (int i = 0; i < 100; ++i) {
    void* p = arena.Allocate(32, 8);
    ASSERT_NE(p, nullptr);
    std::memset(p, 0x11, 32);
  }
  const size_t bump_blocks = arena.block_count();
  // A request far beyond the block size gets its own dedicated block and
  // must not poison the bump path.
  void* big = arena.Allocate(64 * 1024, 16);
  ASSERT_NE(big, nullptr);
  std::memset(big, 0x5A, 64 * 1024);
  EXPECT_EQ(arena.block_count(), bump_blocks + 1);
  EXPECT_GE(arena.bytes_reserved(), 64u * 1024u);
  // Reset releases the dedicated large block (outliers are not retained)
  // but keeps the bump blocks for reuse.
  arena.Reset();
  EXPECT_EQ(arena.block_count(), bump_blocks);
  EXPECT_LT(arena.bytes_reserved(), 64u * 1024u);
}

TEST(ArenaTest, AliasingSharedPtrKeepsArenaAlive) {
  // The PlanContext::AdoptTuple pattern: handles aliasing arena-resident
  // objects share the arena's control block, so the last surviving handle
  // keeps the whole arena (and its storage) alive.
  std::shared_ptr<const std::string> handle;
  {
    auto arena = std::make_shared<Arena>();
    const std::string* obj = arena->Create<std::string>("still alive");
    handle = std::shared_ptr<const std::string>(arena, obj);
    EXPECT_EQ(arena.use_count(), 2);
  }
  EXPECT_EQ(*handle, "still alive");
}

#if HRDM_ASAN
TEST(ArenaDeathTest, UseAfterResetFaultsUnderASan) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Reset re-poisons the retained blocks, so touching a pre-Reset pointer
  // must fault with ASan's use-after-poison report — the recycled bytes
  // are never silently readable.
  EXPECT_DEATH(
      {
        Arena arena;
        volatile int* p = arena.Create<int>(42);
        arena.Reset();
        int v = *p;  // use-after-Reset
        (void)v;
      },
      "use-after-poison");
}

TEST(ArenaDeathTest, RedzoneOverflowFaultsUnderASan) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Neighbouring allocations are separated by poisoned redzones: running
  // one byte past an allocation faults instead of corrupting a neighbour.
  EXPECT_DEATH(
      {
        Arena arena;
        char* p = static_cast<char*>(arena.Allocate(8, 8));
        volatile char v = p[8];  // one past the end
        (void)v;
      },
      "use-after-poison");
}
#endif  // HRDM_ASAN

}  // namespace
}  // namespace hrdm::util
