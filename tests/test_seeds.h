#ifndef HRDM_TESTS_TEST_SEEDS_H_
#define HRDM_TESTS_TEST_SEEDS_H_

// Reproducibility helper for the fuzz/property suites: every randomized
// test takes its seeds from a default list that can be overridden with a
// suite-specific env var holding comma-separated seeds, e.g.
//
//   HRDM_DML_FUZZ_SEEDS=31415 ctest -R DmlFuzz
//   HRDM_PLAN_SEEDS=7 ctest -R PlanParity
//   HRDM_JOIN_DIFF_SEEDS=42 ctest -R JoinDifferential
//   HRDM_PARALLEL_FUZZ_SEEDS=8 ctest -R ParallelDifferential
//   HRDM_CRASH_SEEDS=11 ctest -R CrashRecovery
//   HRDM_STORAGE_FUZZ_SEEDS=7 ctest -R StorageFuzz
//   HRDM_RECOVERY_DIFF_SEEDS=3 ctest -R RecoveryDifferential
//   HRDM_SESSION_FUZZ_SEEDS=5 ctest -R SessionFuzz
//   HRDM_CONCURRENCY_FUZZ_SEEDS=9 ctest -R ConcurrencyFuzz
//
// (The crash harness also reads HRDM_CRASH_FSYNC=off|batched|always to
// pick the child's WAL fsync policy; default "always".)
//
// and every failure prints the seed (plus the override recipe) via
// SeedTrace, so a red property test is a one-command repro.

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

namespace hrdm::testing {

/// Seeds from `env_var` (comma-separated), or `defaults` when the variable
/// is unset/empty. Malformed entries are skipped; an override with no valid
/// entry falls back to the defaults rather than silently running nothing.
inline std::vector<uint64_t> SeedsFromEnv(const char* env_var,
                                          std::vector<uint64_t> defaults) {
  const char* raw = std::getenv(env_var);
  if (raw == nullptr || *raw == '\0') return defaults;
  std::vector<uint64_t> seeds;
  const std::string s(raw);
  size_t pos = 0;
  while (pos <= s.size()) {
    const size_t comma = std::min(s.find(',', pos), s.size());
    const std::string token = s.substr(pos, comma - pos);
    pos = comma + 1;
    if (token.empty()) continue;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
    if (end != nullptr && *end == '\0') {
      seeds.push_back(static_cast<uint64_t>(v));
    }
  }
  return seeds.empty() ? defaults : seeds;
}

/// The SCOPED_TRACE message naming the failing seed and how to re-run it.
inline std::string SeedTrace(const char* env_var, uint64_t seed) {
  return "rng seed " + std::to_string(seed) + " (re-run with " +
         std::string(env_var) + "=" + std::to_string(seed) + ")";
}

}  // namespace hrdm::testing

#endif  // HRDM_TESTS_TEST_SEEDS_H_
