// The crash-injection harness — the durability proof for the storage
// engine (storage/storage_engine.h).
//
// Two attack modes:
//
//  1. Real crashes: fork a child that runs a seeded workload against a
//     StorageEngine, acking each completed operation over a pipe; SIGKILL
//     it at a seed-chosen moment; recover in the parent and check the
//     recovered database is ToString()-identical to an in-memory oracle's
//     state after SOME prefix of the workload — and, under
//     FsyncPolicy::kAlways, a prefix no shorter than the last acked
//     operation (acknowledged == durable).
//
//  2. Simulated torn writes: run a workload, then truncate a copy of the
//     WAL at EVERY byte offset and reopen; the engine must recover exactly
//     the records whose frames survived, and its state must equal the
//     oracle state after exactly that many logged records.
//
// Reproducibility: seeds come from HRDM_CRASH_SEEDS (comma-separated); the
// child's fsync policy from HRDM_CRASH_FSYNC (off|batched|always, default
// always — note only "always" licenses the acked-prefix assertion).

#include <gtest/gtest.h>

#include <csignal>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "storage/snapshot.h"
#include "storage/storage_engine.h"
#include "storage/wal.h"
#include "storage_test_util.h"
#include "test_seeds.h"
#include "util/file.h"

namespace hrdm::storage {
namespace {

using hrdm::storage::testing::TempDir;
using hrdm::storage::testing::WorkloadRunner;

constexpr char kSeedEnv[] = "HRDM_CRASH_SEEDS";
constexpr char kPolicyEnv[] = "HRDM_CRASH_FSYNC";
constexpr int kOps = 120;

FsyncPolicy PolicyFromEnv() {
  const char* raw = std::getenv(kPolicyEnv);
  if (raw == nullptr || *raw == '\0') return FsyncPolicy::kAlways;
  auto parsed = ParseFsyncPolicy(raw);
  return parsed.ok() ? *parsed : FsyncPolicy::kAlways;
}

/// Oracle states: states[k] = ToString of an in-memory Database after the
/// first k workload steps of `seed` (states[0] = empty database).
std::vector<std::string> OracleStates(uint64_t seed, int ops) {
  Database oracle;
  WorkloadRunner runner(seed);
  std::vector<std::string> states;
  states.reserve(ops + 1);
  states.push_back(oracle.ToString());
  for (int i = 0; i < ops; ++i) {
    (void)runner.Step(&oracle, i);  // failures are part of the stream
    states.push_back(oracle.ToString());
  }
  return states;
}

/// Reads exactly 4 bytes (one ack) from `fd`; nullopt on EOF/short read.
std::optional<int32_t> ReadAck(int fd) {
  char buf[4];
  size_t got = 0;
  while (got < sizeof(buf)) {
    const ssize_t n = read(fd, buf + got, sizeof(buf) - got);
    if (n <= 0) return std::nullopt;
    got += static_cast<size_t>(n);
  }
  int32_t v;
  __builtin_memcpy(&v, buf, sizeof(v));
  return v;
}

/// The fork/SIGKILL proof. `checkpoint_every` > 0 additionally exercises
/// crashes landing just before/after checkpoint rotations.
void RunKillTest(uint64_t seed, uint64_t checkpoint_every) {
  SCOPED_TRACE(hrdm::testing::SeedTrace(kSeedEnv, seed));
  const FsyncPolicy policy = PolicyFromEnv();
  SCOPED_TRACE(std::string("fsync policy ") +
               std::string(FsyncPolicyName(policy)));
  TempDir dir("crash");

  int pipe_fds[2];
  ASSERT_EQ(pipe(pipe_fds), 0);
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);

  if (pid == 0) {
    // ---- child: plain workload, no gtest machinery, _exit only ----
    close(pipe_fds[0]);
    StorageEngine::Options options;
    options.fsync = policy;
    options.batch_bytes = 256;  // small batches: more sync boundaries to hit
    options.checkpoint_every = checkpoint_every;
    auto engine = StorageEngine::Open(dir.path(), options);
    if (!engine.ok()) _exit(2);
    WorkloadRunner runner(seed);
    for (int32_t i = 0; i < kOps; ++i) {
      (void)runner.Step(&*engine, i);
      // Ack AFTER the step returns: under kAlways the record (if any) is
      // already fsynced, so an acked step is a durable step.
      char buf[4];
      __builtin_memcpy(buf, &i, sizeof(i));
      if (write(pipe_fds[1], buf, sizeof(buf)) != sizeof(buf)) _exit(3);
    }
    _exit(0);
  }

  // ---- parent ----
  close(pipe_fds[1]);
  Rng rng(seed ^ 0x5DEECE66DULL);
  // Kill somewhere in the middle of the workload (sometimes very early).
  const int kill_after_acks = static_cast<int>(rng.Uniform(1, kOps));
  int32_t last_acked = -1;
  int acks = 0;
  while (acks < kill_after_acks) {
    auto ack = ReadAck(pipe_fds[0]);
    if (!ack.has_value()) break;  // child finished (or died) early
    last_acked = *ack;
    ++acks;
  }
  kill(pid, SIGKILL);
  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
  // Drain any acks that raced the kill: they too were durable.
  while (true) {
    auto ack = ReadAck(pipe_fds[0]);
    if (!ack.has_value()) break;
    last_acked = *ack;
  }
  close(pipe_fds[0]);
  if (WIFEXITED(wstatus)) {
    // The child may have completed everything before the signal landed —
    // that run still must recover to the full final state below. Any
    // nonzero exit is a child-side setup failure.
    ASSERT_EQ(WEXITSTATUS(wstatus), 0) << "child failed before the kill";
  }

  // Recover and compare against the oracle's prefix states.
  auto engine = StorageEngine::Open(dir.path());
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  const std::string recovered = engine->db().ToString();
  const std::vector<std::string> states = OracleStates(seed, kOps);

  // Under kAlways every acked step is durable; weaker policies only
  // guarantee the recovered state is *some* consistent prefix.
  const int min_k = policy == FsyncPolicy::kAlways ? last_acked + 1 : 0;
  bool matched = false;
  for (int k = min_k; k <= kOps; ++k) {
    if (states[k] == recovered) {
      matched = true;
      break;
    }
  }
  EXPECT_TRUE(matched)
      << "recovered state matches no oracle prefix >= " << min_k
      << " (last acked op " << last_acked << ")\nrecovered:\n"
      << recovered;
}

class CrashRecoveryTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CrashRecoveryTest, SigkillMidWorkloadRecoversDurablePrefix) {
  RunKillTest(GetParam(), /*checkpoint_every=*/0);
}

TEST_P(CrashRecoveryTest, SigkillAcrossCheckpointsRecoversDurablePrefix) {
  RunKillTest(GetParam(), /*checkpoint_every=*/13);
}

// Simulated torn writes, exhaustively: after a workload, re-create the
// engine directory with the WAL truncated at every byte offset L. Recovery
// must (a) never fail, (b) replay exactly the frames inside L, (c) land on
// the oracle state after exactly that many logged records.
TEST_P(CrashRecoveryTest, WalTruncationAtEveryByteOffset) {
  const uint64_t seed = GetParam();
  SCOPED_TRACE(hrdm::testing::SeedTrace(kSeedEnv, seed));
  constexpr int kTornOps = 30;  // keeps the byte-offset sweep affordable

  StorageEngine::Options off;
  off.fsync = FsyncPolicy::kOff;

  // Run engine and oracle in lockstep, recording the oracle state after
  // every *logged* record (engine successes).
  TempDir source("torn_src");
  std::vector<std::string> state_by_records;
  std::string wal_bytes;
  {
    auto engine = StorageEngine::Open(source.path(), off);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    Database oracle;
    WorkloadRunner engine_runner(seed);
    WorkloadRunner oracle_runner(seed);
    state_by_records.push_back(oracle.ToString());  // zero records
    for (int i = 0; i < kTornOps; ++i) {
      const Status es = engine_runner.Step(&*engine, i);
      const Status os = oracle_runner.Step(&oracle, i);
      ASSERT_EQ(es.ok(), os.ok())
          << "engine/oracle diverged at step " << i << ": "
          << es.ToString() << " vs " << os.ToString();
      if (es.ok()) state_by_records.push_back(oracle.ToString());
    }
    const std::string wal_path = engine->wal_path();
    engine = Status::InvalidArgument("closed");  // drop the writer fd
    auto bytes = util::ReadFileToString(wal_path);
    ASSERT_TRUE(bytes.ok());
    wal_bytes = *std::move(bytes);
  }

  // Frame boundaries of the intact log.
  auto full = ReadWal(source.path() + "/" + WalFileName(0));
  ASSERT_TRUE(full.ok());
  ASSERT_EQ(full->records.size() + 1, state_by_records.size());
  std::vector<size_t> ends;
  size_t pos = kWalHeaderSize;
  for (const std::string& r : full->records) {
    pos += kWalFrameOverhead + r.size();
    ends.push_back(pos);
  }
  ASSERT_EQ(pos, wal_bytes.size());

  TempDir torn("torn");
  const std::string torn_wal = torn.path() + "/" + WalFileName(0);
  for (size_t cut = 0; cut <= wal_bytes.size(); ++cut) {
    ASSERT_TRUE(util::AtomicWriteFile(
                    torn_wal, std::string_view(wal_bytes).substr(0, cut),
                    /*durable=*/false)
                    .ok());
    auto engine = StorageEngine::Open(torn.path(), off);
    ASSERT_TRUE(engine.ok())
        << "cut at byte " << cut << ": " << engine.status().ToString();
    size_t frames = 0;
    while (frames < ends.size() && ends[frames] <= cut) ++frames;
    ASSERT_EQ(engine->wal_records(), frames) << "cut at byte " << cut;
    ASSERT_EQ(engine->db().ToString(), state_by_records[frames])
        << "cut at byte " << cut;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, CrashRecoveryTest,
    ::testing::ValuesIn(hrdm::testing::SeedsFromEnv(
        kSeedEnv, {11u, 22u, 33u, 44u, 4242u})));

}  // namespace
}  // namespace hrdm::storage
