// Tests for Relation: temporal key uniqueness (Section 3), indexes,
// LS(r), and the storage-engine update paths.

#include "core/relation.h"

#include <gtest/gtest.h>

namespace hrdm {
namespace {

const Lifespan kFull = Span(0, 99);

SchemePtr Scheme() {
  static SchemePtr s = *RelationScheme::Make(
      "r",
      {{"Id", DomainType::kString, kFull, InterpolationKind::kDiscrete},
       {"X", DomainType::kInt, kFull, InterpolationKind::kStepwise}},
      {"Id"});
  return s;
}

Tuple MakeTuple(const std::string& id, TimePoint b, TimePoint e, int64_t x) {
  Tuple::Builder builder(Scheme(), Span(b, e));
  builder.SetConstant("Id", Value::String(id));
  builder.SetConstant("X", Value::Int(x));
  return *std::move(builder).Build();
}

TEST(RelationTest, InsertAndLookup) {
  Relation r(Scheme());
  ASSERT_TRUE(r.Insert(MakeTuple("a", 0, 10, 1)).ok());
  ASSERT_TRUE(r.Insert(MakeTuple("b", 5, 20, 2)).ok());
  EXPECT_EQ(r.size(), 2u);
  auto idx = r.FindByKey({Value::String("b")});
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(r.tuple(*idx).ValueAt(1, 10), Value::Int(2));
  EXPECT_FALSE(r.FindByKey({Value::String("zzz")}).has_value());
}

TEST(RelationTest, TemporalKeyUniqueness) {
  // Section 3: even with disjoint lifespans, two tuples may not share a
  // key — the same object must be one tuple (with a fragmented lifespan).
  Relation r(Scheme());
  ASSERT_TRUE(r.Insert(MakeTuple("a", 0, 10, 1)).ok());
  auto dup = r.Insert(MakeTuple("a", 50, 60, 2));
  EXPECT_FALSE(dup.ok());
  EXPECT_EQ(dup.code(), StatusCode::kConstraintViolation);
}

TEST(RelationTest, RejectsEmptyLifespan) {
  Relation r(Scheme());
  Tuple t = MakeTuple("a", 0, 10, 1).Restrict(Span(50, 60), Scheme());
  EXPECT_FALSE(r.Insert(t).ok());
  EXPECT_TRUE(r.InsertOrDrop(t).ok());  // silently dropped
  EXPECT_TRUE(r.empty());
}

TEST(RelationTest, InsertDedupSkipsStructuralDuplicates) {
  Relation r(Scheme());
  Tuple t = MakeTuple("a", 0, 10, 1);
  ASSERT_TRUE(r.InsertDedup(t).ok());
  ASSERT_TRUE(r.InsertDedup(t).ok());
  EXPECT_EQ(r.size(), 1u);
  // And allows key collisions (set semantics for derived relations).
  ASSERT_TRUE(r.InsertDedup(MakeTuple("a", 50, 60, 2)).ok());
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(r.FindAllByKey({Value::String("a")}).size(), 2u);
}

TEST(RelationTest, LSIsUnionOfTupleLifespans) {
  Relation r(Scheme());
  ASSERT_TRUE(r.Insert(MakeTuple("a", 0, 10, 1)).ok());
  ASSERT_TRUE(r.Insert(MakeTuple("b", 30, 40, 2)).ok());
  EXPECT_EQ(r.LS().ToString(), "{[0,10],[30,40]}");
  EXPECT_TRUE(Relation(Scheme()).LS().empty());
}

TEST(RelationTest, EqualsAsSetIgnoresOrder) {
  Relation r1(Scheme()), r2(Scheme());
  ASSERT_TRUE(r1.Insert(MakeTuple("a", 0, 10, 1)).ok());
  ASSERT_TRUE(r1.Insert(MakeTuple("b", 5, 20, 2)).ok());
  ASSERT_TRUE(r2.Insert(MakeTuple("b", 5, 20, 2)).ok());
  ASSERT_TRUE(r2.Insert(MakeTuple("a", 0, 10, 1)).ok());
  EXPECT_TRUE(r1.EqualsAsSet(r2));
  Relation r3(Scheme());
  ASSERT_TRUE(r3.Insert(MakeTuple("a", 0, 10, 1)).ok());
  EXPECT_FALSE(r1.EqualsAsSet(r3));
}

TEST(RelationTest, ReplaceAtUpdatesIndexes) {
  Relation r(Scheme());
  ASSERT_TRUE(r.Insert(MakeTuple("a", 0, 10, 1)).ok());
  ASSERT_TRUE(r.Insert(MakeTuple("b", 0, 10, 2)).ok());
  // Replace b's tuple wholesale.
  ASSERT_TRUE(r.ReplaceAt(1, MakeTuple("b", 0, 30, 5)).ok());
  auto idx = r.FindByKey({Value::String("b")});
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(r.tuple(*idx).lifespan().ToString(), "{[0,30]}");
  // Key change is allowed as long as it stays unique.
  ASSERT_TRUE(r.ReplaceAt(1, MakeTuple("c", 0, 5, 9)).ok());
  EXPECT_FALSE(r.FindByKey({Value::String("b")}).has_value());
  EXPECT_TRUE(r.FindByKey({Value::String("c")}).has_value());
  // ...but may not steal another tuple's key.
  auto bad = r.ReplaceAt(1, MakeTuple("a", 0, 5, 9));
  EXPECT_FALSE(bad.ok());
}

TEST(RelationTest, EraseAtReindexes) {
  Relation r(Scheme());
  ASSERT_TRUE(r.Insert(MakeTuple("a", 0, 10, 1)).ok());
  ASSERT_TRUE(r.Insert(MakeTuple("b", 0, 10, 2)).ok());
  ASSERT_TRUE(r.Insert(MakeTuple("c", 0, 10, 3)).ok());
  ASSERT_TRUE(r.EraseAt(0).ok());
  EXPECT_EQ(r.size(), 2u);
  EXPECT_FALSE(r.FindByKey({Value::String("a")}).has_value());
  auto idx = r.FindByKey({Value::String("c")});
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(r.tuple(*idx).ValueAt(1, 5), Value::Int(3));
  EXPECT_FALSE(r.EraseAt(5).ok());
}

TEST(RelationTest, SchemeMismatchRejected) {
  auto other = *RelationScheme::Make(
      "other",
      {{"Id", DomainType::kString, kFull, InterpolationKind::kDiscrete},
       {"Y", DomainType::kInt, kFull, InterpolationKind::kStepwise}},
      {"Id"});
  Relation r(other);
  auto s = r.Insert(MakeTuple("a", 0, 10, 1));
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIncompatibleSchemes);
}

}  // namespace
}  // namespace hrdm
