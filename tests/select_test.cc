// Tests for SELECT-IF and SELECT-WHEN (Section 4.3).

#include "algebra/select.h"

#include <gtest/gtest.h>

#include "algebra/when.h"

namespace hrdm {
namespace {

const Lifespan kFull = Span(0, 99);

SchemePtr EmpScheme() {
  static SchemePtr s = *RelationScheme::Make(
      "emp",
      {{"Name", DomainType::kString, kFull, InterpolationKind::kDiscrete},
       {"Salary", DomainType::kInt, kFull, InterpolationKind::kStepwise},
       {"Mgr", DomainType::kString, kFull, InterpolationKind::kStepwise}},
      {"Name"});
  return s;
}

/// john earns 20K over [0,9], 30K over [10,19]; mary earns 30K throughout
/// [5,24]; bob earns 10K on [0,4].
Relation PaperEmp() {
  Relation r(EmpScheme());
  {
    Tuple::Builder b(EmpScheme(), Span(0, 19));
    b.SetConstant("Name", Value::String("john"));
    b.Set("Salary", *TemporalValue::FromSegments(
                        {{Interval(0, 9), Value::Int(20000)},
                         {Interval(10, 19), Value::Int(30000)}}));
    b.SetConstant("Mgr", Value::String("mary"));
    EXPECT_TRUE(r.Insert(*std::move(b).Build()).ok());
  }
  {
    Tuple::Builder b(EmpScheme(), Span(5, 24));
    b.SetConstant("Name", Value::String("mary"));
    b.SetConstant("Salary", Value::Int(30000));
    b.SetConstant("Mgr", Value::String("mary"));
    EXPECT_TRUE(r.Insert(*std::move(b).Build()).ok());
  }
  {
    Tuple::Builder b(EmpScheme(), Span(0, 4));
    b.SetConstant("Name", Value::String("bob"));
    b.SetConstant("Salary", Value::Int(10000));
    b.SetConstant("Mgr", Value::String("john"));
    EXPECT_TRUE(r.Insert(*std::move(b).Build()).ok());
  }
  return r;
}

TEST(SelectIfTest, ExistsSelectsWholeTuples) {
  Relation r = PaperEmp();
  auto sel = SelectIf(
      r, Predicate::AttrConst("Salary", CompareOp::kEq, Value::Int(30000)),
      Quantifier::kExists);
  ASSERT_TRUE(sel.ok());
  // john (at some times) and mary qualify; lifespans unchanged.
  ASSERT_EQ(sel->size(), 2u);
  auto john = sel->FindByKey({Value::String("john")});
  ASSERT_TRUE(john.has_value());
  EXPECT_EQ(sel->tuple(*john).lifespan().ToString(), "{[0,19]}");
}

TEST(SelectIfTest, ForallRequiresEveryChronon) {
  Relation r = PaperEmp();
  auto sel = SelectIf(
      r, Predicate::AttrConst("Salary", CompareOp::kEq, Value::Int(30000)),
      Quantifier::kForall);
  ASSERT_TRUE(sel.ok());
  // Only mary earns 30K over her entire lifespan.
  ASSERT_EQ(sel->size(), 1u);
  EXPECT_EQ(sel->tuple(0).KeyValues()[0], Value::String("mary"));
}

TEST(SelectIfTest, WindowRestrictsTheQuantifier) {
  Relation r = PaperEmp();
  // Within [10,19] john earns 30K at every chronon.
  auto sel = SelectIf(
      r, Predicate::AttrConst("Salary", CompareOp::kEq, Value::Int(30000)),
      Quantifier::kForall, Span(10, 19));
  ASSERT_TRUE(sel.ok());
  // john and mary satisfy the criterion throughout the window; bob's
  // lifespan [0,4] is disjoint from it, so bob qualifies *vacuously* (the
  // formal Q(s ∈ L ∩ t.l) semantics — see ForallVacuousTruth below).
  EXPECT_EQ(sel->size(), 3u);
  EXPECT_TRUE(sel->FindByKey({Value::String("john")}).has_value());
  EXPECT_TRUE(sel->FindByKey({Value::String("mary")}).has_value());
}

TEST(SelectIfTest, ForallVacuousTruthOnDisjointWindow) {
  // The paper's formal definition quantifies over L ∩ t.l; when that set is
  // empty, forall is vacuously true. bob's lifespan [0,4] is disjoint from
  // [50,60], so bob is (vacuously) selected.
  Relation r = PaperEmp();
  auto sel = SelectIf(
      r, Predicate::AttrConst("Salary", CompareOp::kEq, Value::Int(777)),
      Quantifier::kForall, Span(50, 60));
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->size(), 3u);  // everyone, vacuously
  auto exists = SelectIf(
      r, Predicate::AttrConst("Salary", CompareOp::kEq, Value::Int(777)),
      Quantifier::kExists, Span(50, 60));
  ASSERT_TRUE(exists.ok());
  EXPECT_TRUE(exists->empty());  // no witness anywhere
}

TEST(SelectIfTest, UnknownAttributeErrors) {
  Relation r = PaperEmp();
  auto sel = SelectIf(
      r, Predicate::AttrConst("Bonus", CompareOp::kEq, Value::Int(1)),
      Quantifier::kExists);
  EXPECT_FALSE(sel.ok());
  EXPECT_EQ(sel.status().code(), StatusCode::kNotFound);
}

TEST(SelectWhenTest, PaperJohn30KExample) {
  // Section 4.3: σ-when(NAME=john AND SAL=30K)(emp) yields one tuple whose
  // new lifespan is "just those times when John earned 30K".
  Relation r = PaperEmp();
  auto sel = SelectWhen(
      r, Predicate::And(
             {Predicate::AttrConst("Name", CompareOp::kEq,
                                   Value::String("john")),
              Predicate::AttrConst("Salary", CompareOp::kEq,
                                   Value::Int(30000))}));
  ASSERT_TRUE(sel.ok());
  ASSERT_EQ(sel->size(), 1u);
  EXPECT_EQ(sel->tuple(0).lifespan().ToString(), "{[10,19]}");
  // Values are clipped to the new lifespan.
  EXPECT_TRUE(sel->tuple(0).ValueAt(1, 5).absent());
  EXPECT_EQ(sel->tuple(0).ValueAt(1, 12), Value::Int(30000));
}

TEST(SelectWhenTest, AttrAttrPredicate) {
  // Employees WHEN they are their own manager.
  Relation r = PaperEmp();
  auto sel = SelectWhen(
      r, Predicate::AttrAttr("Name", CompareOp::kEq, "Mgr"));
  ASSERT_TRUE(sel.ok());
  ASSERT_EQ(sel->size(), 1u);
  EXPECT_EQ(sel->tuple(0).KeyValues()[0], Value::String("mary"));
  EXPECT_EQ(sel->tuple(0).lifespan().ToString(), "{[5,24]}");
}

TEST(SelectWhenTest, DropsTuplesThatNeverMatch) {
  Relation r = PaperEmp();
  auto sel = SelectWhen(
      r, Predicate::AttrConst("Salary", CompareOp::kGt, Value::Int(50000)));
  ASSERT_TRUE(sel.ok());
  EXPECT_TRUE(sel->empty());
}

TEST(SelectWhenTest, StackedSelectWhenIsConjunction) {
  // Commutativity of select (Section 5): nesting two SELECT-WHENs equals
  // one conjunctive SELECT-WHEN, in either order.
  Relation r = PaperEmp();
  Predicate p1 = Predicate::AttrConst("Salary", CompareOp::kGe,
                                      Value::Int(20000));
  Predicate p2 = Predicate::AttrConst("Mgr", CompareOp::kEq,
                                      Value::String("mary"));
  auto a = *SelectWhen(*SelectWhen(r, p1), p2);
  auto b = *SelectWhen(*SelectWhen(r, p2), p1);
  auto c = *SelectWhen(r, Predicate::And({p1, p2}));
  EXPECT_TRUE(a.EqualsAsSet(b));
  EXPECT_TRUE(a.EqualsAsSet(c));
}

TEST(SelectWhenTest, WhenComposesWithSelect) {
  // Section 4.5: WHEN(SELECT-WHEN(...)) answers "when was the condition
  // satisfied".
  Relation r = PaperEmp();
  auto sel = *SelectWhen(
      r, Predicate::AttrConst("Salary", CompareOp::kEq, Value::Int(30000)));
  EXPECT_EQ(When(sel).ToString(), "{[5,24]}");  // john [10,19] ∪ mary [5,24]
}

TEST(SelectTest, SelectWhenSubsetOfSelectIfExists) {
  // Every tuple surviving SELECT-WHEN corresponds to a tuple selected by
  // SELECT-IF(∃) with the same key.
  Relation r = PaperEmp();
  Predicate p = Predicate::AttrConst("Salary", CompareOp::kGe,
                                     Value::Int(25000));
  auto when_sel = *SelectWhen(r, p);
  auto if_sel = *SelectIf(r, p, Quantifier::kExists);
  for (const Tuple& t : when_sel) {
    EXPECT_TRUE(if_sel.FindByKey(t.KeyValues()).has_value());
  }
  EXPECT_EQ(when_sel.size(), if_sel.size());
}

}  // namespace
}  // namespace hrdm
