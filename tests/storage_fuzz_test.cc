// Corruption-injection fuzz for every decode path that can meet untrusted
// bytes after a crash or disk fault: snapshot images
// (Database::DecodeSnapshot), snapshot envelopes (DecodeSnapshotFile),
// change-log records (ChangeLog::Decode / ApplyLogRecord), the low-level
// serializer primitives, and whole WAL files. The contract everywhere:
// malformed input produces a clean Status (Corruption / InvalidArgument /
// ...), NEVER a crash, UB or StatusCode::kInternal. The CI ASan/UBSan job
// runs this suite with sanitizers watching.
//
// Seeds: HRDM_STORAGE_FUZZ_SEEDS (comma-separated) replays a failure.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "storage/changelog.h"
#include "storage/serializer.h"
#include "storage/snapshot.h"
#include "storage/storage_engine.h"
#include "storage/wal.h"
#include "storage_test_util.h"
#include "test_seeds.h"
#include "util/random.h"

namespace hrdm::storage {
namespace {

using hrdm::storage::testing::TempDir;
using hrdm::storage::testing::WorkloadRunner;

constexpr char kSeedEnv[] = "HRDM_STORAGE_FUZZ_SEEDS";

/// A database touching every value domain, index kind, foreign keys and a
/// fragmented lifespan — so its image exercises every decoder branch.
Database SampleDatabase() {
  Database db;
  const Lifespan full = Span(0, 99);
  EXPECT_TRUE(db.CreateRelation(
                    "obj",
                    {{"Id", DomainType::kString, full,
                      InterpolationKind::kDiscrete},
                     {"B", DomainType::kBool, full,
                      InterpolationKind::kDiscrete},
                     {"D", DomainType::kDouble, full,
                      InterpolationKind::kLinear},
                     {"T", DomainType::kTime, full,
                      InterpolationKind::kStepwise},
                     {"X", DomainType::kInt, full,
                      InterpolationKind::kStepwise}},
                    {"Id"})
                  .ok());
  auto scheme = *db.catalog().Get("obj");
  for (int i = 0; i < 6; ++i) {
    Tuple::Builder builder(scheme, Span(i * 3, 40 + i));
    builder.SetConstant("Id", Value::String("o" + std::to_string(i)));
    builder.SetAt("B", i * 3, Value::Bool(i % 2 == 0));
    builder.SetAt("D", i * 3, Value::Double(1.5 * i));
    builder.SetAt("T", i * 3, Value::Time(100 + i));
    builder.SetAt("X", i * 3, Value::Int(7 * i));
    auto t = std::move(builder).Build();
    EXPECT_TRUE(t.ok()) << t.status().ToString();
    EXPECT_TRUE(db.Insert("obj", *std::move(t)).ok());
  }
  // Fragmented lifespan (delta-encoded interval lists with gaps).
  EXPECT_TRUE(db.EndLifespan("obj", {Value::String("o0")}, 10).ok());
  EXPECT_TRUE(
      db.Reincarnate("obj", {Value::String("o0")}, Span(20, 30)).ok());
  EXPECT_TRUE(db.CreateRelation("ref",
                                {{"Id", DomainType::kString, full,
                                  InterpolationKind::kDiscrete}},
                                {"Id"})
                  .ok());
  EXPECT_TRUE(db.RegisterForeignKey("ref", {"Id"}, "obj").ok());
  EXPECT_TRUE(db.CreateLifespanIndex("obj").ok());
  EXPECT_TRUE(db.CreateValueIndex("obj", "X").ok());
  return db;
}

/// One random mutation of `base`: truncation, 1-8 bit flips, a byte
/// erased, inserted or replaced.
std::string Corrupt(Rng* rng, const std::string& base) {
  std::string s = base;
  switch (rng->Uniform(0, 4)) {
    case 0:  // truncate
      s.resize(rng->Uniform(0, static_cast<int64_t>(s.size())));
      break;
    case 1: {  // flip 1..8 bits
      if (s.empty()) break;
      const int flips = static_cast<int>(rng->Uniform(1, 8));
      for (int i = 0; i < flips; ++i) {
        const size_t at = rng->Index(s.size());
        s[at] = static_cast<char>(s[at] ^ (1u << rng->Uniform(0, 7)));
      }
      break;
    }
    case 2:  // erase a byte
      if (!s.empty()) s.erase(rng->Index(s.size()), 1);
      break;
    case 3:  // insert a random byte
      s.insert(s.begin() + rng->Index(s.size() + 1),
               static_cast<char>(rng->Uniform(0, 255)));
      break;
    default:  // overwrite a byte
      if (!s.empty()) {
        s[rng->Index(s.size())] = static_cast<char>(rng->Uniform(0, 255));
      }
      break;
  }
  return s;
}

std::string RandomBytes(Rng* rng, size_t max_len) {
  std::string s;
  const size_t n = static_cast<size_t>(
      rng->Uniform(0, static_cast<int64_t>(max_len)));
  s.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    s.push_back(static_cast<char>(rng->Uniform(0, 255)));
  }
  return s;
}

void ExpectCleanOutcome(const Status& s) {
  if (!s.ok()) {
    EXPECT_NE(s.code(), StatusCode::kInternal) << s.ToString();
  }
}

class StorageFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StorageFuzzTest, SnapshotImageDecodeSurvivesCorruption) {
  SCOPED_TRACE(hrdm::testing::SeedTrace(kSeedEnv, GetParam()));
  Rng rng(GetParam());
  const Database db = SampleDatabase();
  const std::string image = db.EncodeSnapshot();
  for (int iter = 0; iter < 400; ++iter) {
    const std::string mutated = Corrupt(&rng, image);
    auto decoded = Database::DecodeSnapshot(mutated);
    ExpectCleanOutcome(decoded.status());
  }
  for (int iter = 0; iter < 200; ++iter) {
    auto decoded = Database::DecodeSnapshot(RandomBytes(&rng, 200));
    ExpectCleanOutcome(decoded.status());
  }
}

TEST_P(StorageFuzzTest, SnapshotEnvelopeDecodeSurvivesCorruption) {
  SCOPED_TRACE(hrdm::testing::SeedTrace(kSeedEnv, GetParam()));
  Rng rng(GetParam() + 1);
  const Database db = SampleDatabase();
  const std::string envelope = EncodeSnapshotFile(db);
  // The pristine envelope round-trips...
  auto pristine = DecodeSnapshotFile(envelope);
  ASSERT_TRUE(pristine.ok()) << pristine.status().ToString();
  EXPECT_EQ(pristine->ToString(), db.ToString());
  // ...and any single corruption either round-trips to the identical
  // database (impossible for a framed CRC envelope, but the *contract* is
  // merely no-UB + no-Internal) or fails cleanly.
  for (int iter = 0; iter < 400; ++iter) {
    const std::string mutated = Corrupt(&rng, envelope);
    auto decoded = DecodeSnapshotFile(mutated);
    if (decoded.ok()) {
      EXPECT_EQ(decoded->ToString(), db.ToString())
          << "a corrupted envelope decoded to a different database";
    } else {
      ExpectCleanOutcome(decoded.status());
    }
  }
  for (int iter = 0; iter < 200; ++iter) {
    auto decoded = DecodeSnapshotFile(RandomBytes(&rng, 200));
    ExpectCleanOutcome(decoded.status());
  }
}

TEST_P(StorageFuzzTest, ChangeLogRecordsSurviveCorruption) {
  SCOPED_TRACE(hrdm::testing::SeedTrace(kSeedEnv, GetParam()));
  Rng rng(GetParam() + 2);
  // Harvest genuine records from a seeded workload.
  LoggedDatabase ldb;
  WorkloadRunner runner(GetParam());
  for (int i = 0; i < 30; ++i) (void)runner.Step(&ldb, i);
  const std::vector<std::string>& records = ldb.log().records();
  ASSERT_GT(records.size(), 4u);

  for (int iter = 0; iter < 400; ++iter) {
    const size_t k = rng.Index(records.size());
    const std::string mutated = Corrupt(&rng, records[k]);
    // Replay the clean prefix, then apply the mutated record: the database
    // must stay usable and the status clean whatever happens.
    Database db;
    for (size_t j = 0; j < k; ++j) {
      ASSERT_TRUE(ApplyLogRecord(records[j], &db).ok());
    }
    ExpectCleanOutcome(ApplyLogRecord(mutated, &db));
  }
  Database db;
  for (int iter = 0; iter < 200; ++iter) {
    ExpectCleanOutcome(ApplyLogRecord(RandomBytes(&rng, 120), &db));
  }
}

TEST_P(StorageFuzzTest, SerializerPrimitivesSurviveRandomBytes) {
  SCOPED_TRACE(hrdm::testing::SeedTrace(kSeedEnv, GetParam()));
  Rng rng(GetParam() + 3);
  for (int iter = 0; iter < 600; ++iter) {
    const std::string bytes = RandomBytes(&rng, 150);
    {
      Reader r(bytes);
      ExpectCleanOutcome(DecodeLifespan(&r).status());
    }
    {
      Reader r(bytes);
      ExpectCleanOutcome(DecodeTemporalValue(&r).status());
    }
    {
      Reader r(bytes);
      ExpectCleanOutcome(DecodeValue(&r).status());
    }
    {
      Reader r(bytes);
      ExpectCleanOutcome(DecodeScheme(&r).status());
    }
    {
      Reader r(bytes);
      ExpectCleanOutcome(DecodeRelation(&r).status());
    }
  }
}

TEST_P(StorageFuzzTest, WholeWalFilesSurviveCorruption) {
  SCOPED_TRACE(hrdm::testing::SeedTrace(kSeedEnv, GetParam()));
  Rng rng(GetParam() + 4);
  TempDir dir("fuzz");

  // A real WAL from a seeded workload...
  StorageEngine::Options off;
  off.fsync = FsyncPolicy::kOff;
  {
    auto engine = StorageEngine::Open(dir.path(), off);
    ASSERT_TRUE(engine.ok());
    WorkloadRunner runner(GetParam());
    for (int i = 0; i < 25; ++i) (void)runner.Step(&*engine, i);
  }
  auto wal_bytes = util::ReadFileToString(dir.path() + "/" + WalFileName(0));
  ASSERT_TRUE(wal_bytes.ok());

  // ...mutated and re-opened through the full recovery path.
  TempDir victim("fuzz_victim");
  const std::string victim_wal = victim.path() + "/" + WalFileName(0);
  for (int iter = 0; iter < 60; ++iter) {
    ASSERT_TRUE(util::AtomicWriteFile(victim_wal,
                                      Corrupt(&rng, *wal_bytes),
                                      /*durable=*/false)
                    .ok());
    auto contents = ReadWal(victim_wal);
    ExpectCleanOutcome(contents.status());
    auto engine = StorageEngine::Open(victim.path(), off);
    ExpectCleanOutcome(engine.status());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, StorageFuzzTest,
    ::testing::ValuesIn(hrdm::testing::SeedsFromEnv(
        kSeedEnv, {1u, 7u, 42u, 31415u})));

}  // namespace
}  // namespace hrdm::storage
