// Tests for the documentation checker's engine (tools/hrql_check_lib.h):
// one passing and one failing fixture per check class — hrql snippet
// parsing, relative-link resolution, HRQL.md operator coverage — mirroring
// tests/lint_test.cc for the architecture linter. The fixtures are
// in-memory (path, content) documents with an injected existence probe,
// so these tests pin the engine's behavior without touching the real
// docs; the CLI wrapper (tools/hrql_check.cc) is the same engine over the
// real files.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "tools/hrql_check_lib.h"

namespace hrdm::doccheck {
namespace {

/// Messages of all failures, as "file:line: message" for readable output.
std::vector<std::string> Render(const std::vector<Failure>& failures) {
  std::vector<std::string> out;
  out.reserve(failures.size());
  for (const Failure& f : failures) {
    out.push_back(f.file + ":" + std::to_string(f.line) + ": " + f.message);
  }
  return out;
}

bool Mentions(const std::vector<Failure>& failures,
              const std::string& needle) {
  for (const Failure& f : failures) {
    if (f.message.find(needle) != std::string::npos) return true;
  }
  return false;
}

/// An Options whose link targets resolve iff listed in `existing`
/// (already resolved against the document's directory).
Options ExistsOnly(std::set<std::string> existing) {
  Options options;
  options.path_exists = [existing = std::move(existing)](
                            const std::string& p) {
    return existing.count(p) != 0;
  };
  return options;
}

/// No links in the fixture => the probe must never fire.
Options NoLinksExpected() {
  Options options;
  options.path_exists = [](const std::string& p) -> bool {
    ADD_FAILURE() << "unexpected existence probe for " << p;
    return false;
  };
  return options;
}

// --- hrql snippets -----------------------------------------------------------

TEST(HrqlSnippetTest, ParsingStatementsPass) {
  const DocFile doc = {"docs/guide.md",
                       "# Guide\n"
                       "```hrql\n"
                       "-- a comment line\n"
                       "timeslice(emp, {[5, 20]})\n"
                       "select_if(emp, Salary > 100, exists)\n"
                       "\n"
                       "when(emp)\n"
                       "```\n"};
  EXPECT_TRUE(CheckFile(doc, NoLinksExpected()).empty());
}

TEST(HrqlSnippetTest, NonParsingStatementFailsWithItsLine) {
  const DocFile doc = {"docs/guide.md",
                       "```hrql\n"
                       "timeslice(emp, {[5, 20]})\n"
                       "select_if(emp,,)\n"
                       "```\n"};
  const std::vector<Failure> failures = CheckFile(doc, NoLinksExpected());
  ASSERT_EQ(failures.size(), 1u) << ::testing::PrintToString(Render(failures));
  EXPECT_EQ(failures[0].line, 3u);
  EXPECT_TRUE(Mentions(failures, "hrql snippet does not parse"));
}

TEST(HrqlSnippetTest, OtherFenceLanguagesAreNotParsed) {
  const DocFile doc = {"docs/guide.md",
                       "```cpp\n"
                       "auto x = not_hrql();\n"
                       "```\n"};
  EXPECT_TRUE(CheckFile(doc, NoLinksExpected()).empty());
}

// --- relative links ----------------------------------------------------------

TEST(RelativeLinkTest, ResolvingLinksPass) {
  const DocFile doc = {"docs/guide.md",
                       "See [the architecture](ARCHITECTURE.md) and\n"
                       "[the root readme](../README.md#usage), or visit\n"
                       "[the paper](https://example.org/p) / "
                       "[mail us](mailto:x@y.z) / [this section](#anchor).\n"};
  const Options options =
      ExistsOnly({"docs/ARCHITECTURE.md", "docs/../README.md"});
  EXPECT_TRUE(CheckFile(doc, options).empty());
}

TEST(RelativeLinkTest, BrokenLinkFailsWithItsLine) {
  const DocFile doc = {"docs/guide.md",
                       "intro\n"
                       "see [gone](MISSING.md)\n"};
  const std::vector<Failure> failures =
      CheckFile(doc, ExistsOnly({/*nothing exists*/}));
  ASSERT_EQ(failures.size(), 1u) << ::testing::PrintToString(Render(failures));
  EXPECT_EQ(failures[0].line, 2u);
  EXPECT_TRUE(Mentions(failures, "broken relative link: MISSING.md"));
}

TEST(RelativeLinkTest, FencedCodeBlocksAreSkipped) {
  const DocFile doc = {"docs/guide.md",
                       "```\n"
                       "not_a_link [x](NOPE.md)\n"
                       "```\n"};
  EXPECT_TRUE(CheckFile(doc, ExistsOnly({})).empty());
}

// --- operator coverage -------------------------------------------------------

/// One ```hrql block demonstrating every operator the engine requires.
std::string FullCoverageReference() {
  std::string doc = "# HRQL\n```hrql\n";
  doc +=
      "select_if(emp, Salary > 100, exists)\n"
      "select_when(emp, Salary > 100)\n"
      "project(emp, Id)\n"
      "timeslice(emp, {[5, 20]})\n"
      "dynslice(emp, Ref)\n"
      "union(emp, emp)\n"
      "intersect(emp, emp)\n"
      "minus(emp, emp)\n"
      "ounion(emp, emp)\n"
      "ointersect(emp, emp)\n"
      "ominus(emp, emp)\n"
      "product(emp, dept)\n"
      "join(emp, dept, DeptId = Id)\n"
      "natjoin(emp, dept)\n"
      "timejoin(emp, dept, Ref)\n"
      "aggregate(emp, count)\n"
      "when(emp)\n"
      "lunion(when(emp), when(emp))\n"
      "lintersect(when(emp), when(emp))\n"
      "lminus(when(emp), when(emp))\n";
  doc += "```\n";
  return doc;
}

TEST(OperatorCoverageTest, FullyCoveredReferencePasses) {
  const DocFile doc = {"docs/HRQL.md", FullCoverageReference()};
  const std::vector<Failure> failures = CheckFile(doc, NoLinksExpected());
  EXPECT_TRUE(failures.empty()) << ::testing::PrintToString(Render(failures));
}

TEST(OperatorCoverageTest, MissingOperatorFails) {
  // Strip the dynslice example; the engine must call out exactly that
  // operator (as a whole-file finding).
  std::string body = FullCoverageReference();
  const size_t pos = body.find("dynslice(emp, Ref)\n");
  ASSERT_NE(pos, std::string::npos);
  body.erase(pos, std::string("dynslice(emp, Ref)\n").size());

  const std::vector<Failure> failures =
      CheckFile({"docs/HRQL.md", body}, NoLinksExpected());
  ASSERT_EQ(failures.size(), 1u) << ::testing::PrintToString(Render(failures));
  EXPECT_EQ(failures[0].line, 0u);
  EXPECT_TRUE(Mentions(failures, "operator 'dynslice' has no example"));
}

TEST(OperatorCoverageTest, OnlyTheLanguageReferenceIsHeldToCoverage) {
  // Any other file may show as few operators as it likes.
  const DocFile doc = {"docs/guide.md",
                       "```hrql\ntimeslice(emp, {[5, 20]})\n```\n"};
  EXPECT_TRUE(CheckFile(doc, NoLinksExpected()).empty());
}

// --- engine plumbing ---------------------------------------------------------

TEST(RunTest, AggregatesFailuresAcrossDocumentsInOrder) {
  const std::vector<DocFile> docs = {
      {"a.md", "```hrql\nselect_if(emp,,)\n```\n"},
      {"b.md", "[gone](MISSING.md)\n"},
  };
  const std::vector<Failure> failures =
      ::hrdm::doccheck::Run(docs, ExistsOnly({}));
  ASSERT_EQ(failures.size(), 2u) << ::testing::PrintToString(Render(failures));
  EXPECT_EQ(failures[0].file, "a.md");
  EXPECT_EQ(failures[1].file, "b.md");
}

}  // namespace
}  // namespace hrdm::doccheck
