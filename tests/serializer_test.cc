// Tests for the binary serializer (the physical level of Figure 9):
// round-trips for every model object and robustness against corruption.

#include "storage/serializer.h"

#include <gtest/gtest.h>

#include "util/random.h"
#include "workload/generators.h"

namespace hrdm::storage {
namespace {

TEST(VarintTest, RoundTripsEdgeValues) {
  const uint64_t cases[] = {0,   1,          127,       128,
                            300, 1ull << 32, UINT64_MAX};
  for (uint64_t v : cases) {
    std::string buf;
    PutVarint(&buf, v);
    Reader r(buf);
    auto back = r.GetVarint();
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, v);
    EXPECT_TRUE(r.AtEnd());
  }
}

TEST(VarintTest, SignedZigzag) {
  const int64_t signed_cases[] = {0, -1, 1, -64, 64, INT64_MIN, INT64_MAX};
  for (int64_t v : signed_cases) {
    std::string buf;
    PutSignedVarint(&buf, v);
    Reader r(buf);
    auto back = r.GetSignedVarint();
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, v);
  }
}

TEST(VarintTest, TruncatedIsCorruption) {
  std::string buf;
  PutVarint(&buf, 1ull << 40);
  buf.resize(buf.size() - 1);
  Reader r(buf);
  auto back = r.GetVarint();
  EXPECT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kCorruption);
}

TEST(StringTest, RoundTripAndTruncation) {
  std::string buf;
  PutString(&buf, "hello \0 world");
  Reader r(buf);
  auto back = r.GetString();
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, std::string("hello \0 world"));

  buf.resize(buf.size() - 2);
  Reader r2(buf);
  EXPECT_FALSE(r2.GetString().ok());
}

TEST(LifespanCodecTest, RoundTrip) {
  for (const Lifespan& l :
       {Lifespan::Empty(), Span(0, 10), Lifespan::Point(-5),
        Lifespan::FromIntervals({Interval(-10, -2), Interval(5, 9),
                                 Interval(100, 200)})}) {
    std::string buf;
    EncodeLifespan(&buf, l);
    Reader r(buf);
    auto back = DecodeLifespan(&r);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, l);
  }
}

TEST(ValueCodecTest, RoundTripAllTypes) {
  for (const Value& v :
       {Value(), Value::Bool(true), Value::Bool(false), Value::Int(-123456),
        Value::Double(3.14159), Value::String(""), Value::String("codd"),
        Value::Time(-7)}) {
    std::string buf;
    EncodeValue(&buf, v);
    Reader r(buf);
    auto back = DecodeValue(&r);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, v);
  }
}

TEST(TemporalValueCodecTest, RoundTrip) {
  auto tv = *TemporalValue::FromSegments(
      {{Interval(0, 4), Value::String("a")},
       {Interval(8, 8), Value::String("b")},
       {Interval(20, 30), Value::String("a")}});
  std::string buf;
  EncodeTemporalValue(&buf, tv);
  Reader r(buf);
  auto back = DecodeTemporalValue(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, tv);
}

TEST(SchemeCodecTest, RoundTrip) {
  auto scheme = *RelationScheme::Make(
      "stocks",
      {{"Ticker", DomainType::kString, Span(0, 99),
        InterpolationKind::kDiscrete},
       {"Price", DomainType::kDouble, Span(0, 99),
        InterpolationKind::kLinear},
       {"Volume", DomainType::kInt,
        Lifespan::FromIntervals({Interval(0, 49), Interval(70, 99)}),
        InterpolationKind::kStepwise}},
      {"Ticker"});
  std::string buf;
  EncodeScheme(&buf, *scheme);
  Reader r(buf);
  auto back = DecodeScheme(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE((*back)->SameStructure(*scheme));
  EXPECT_EQ((*back)->name(), "stocks");
}

TEST(RelationCodecTest, RoundTripWorkloads) {
  Rng rng(5);
  auto emp = *workload::MakePersonnel(&rng, workload::PersonnelConfig{
                                                .num_employees = 30});
  std::string buf;
  EncodeRelation(&buf, emp);
  Reader r(buf);
  auto back = DecodeRelation(&r);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(back->EqualsAsSet(emp));
  EXPECT_TRUE(r.AtEnd());
}

TEST(RelationCodecTest, TruncationNeverCrashes) {
  // Fuzz-lite: decoding any prefix of a valid encoding must return an
  // error (or a shorter valid object), never crash or hang.
  Rng rng(6);
  auto emp = *workload::MakePersonnel(
      &rng, workload::PersonnelConfig{.num_employees = 8});
  std::string buf;
  EncodeRelation(&buf, emp);
  for (size_t cut = 0; cut < buf.size(); cut += 7) {
    Reader r(std::string_view(buf).substr(0, cut));
    auto result = DecodeRelation(&r);
    // Either an explicit error, or (rarely) a structurally valid shorter
    // object. Both are acceptable; crashing is not.
    (void)result;
  }
}

TEST(RelationCodecTest, BitFlipsNeverCrash) {
  Rng rng(8);
  auto emp = *workload::MakePersonnel(
      &rng, workload::PersonnelConfig{.num_employees = 5});
  std::string buf;
  EncodeRelation(&buf, emp);
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = buf;
    const size_t pos = rng.Index(mutated.size());
    mutated[pos] = static_cast<char>(rng.Uniform(0, 255));
    Reader r(mutated);
    auto result = DecodeRelation(&r);
    (void)result;  // must not crash; error is fine
  }
}

TEST(FileIoTest, WriteAndReadBack) {
  const std::string path = "/tmp/hrdm_serializer_test.bin";
  const std::string payload = "binary\0data\xff";
  ASSERT_TRUE(WriteFile(path, payload).ok());
  auto back = ReadFileToString(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, payload);
  std::remove(path.c_str());
  EXPECT_FALSE(ReadFileToString(path).ok());
}

}  // namespace
}  // namespace hrdm::storage
