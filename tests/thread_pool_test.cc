// Directed tests for the morsel-execution worker pool (util/thread_pool.h):
// inline zero-worker mode, FIFO draining, exception propagation through
// futures, shutdown-under-pending-work semantics, growth, and the
// ParallelMorsels fan-out helper (coverage, morsel counting, first-error-
// in-morsel-order determinism).

#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

namespace hrdm::util {
namespace {

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.worker_count(), 4u);
  std::atomic<int> runs{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&runs](size_t worker_id) {
      EXPECT_LT(worker_id, 4u);
      ++runs;
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(runs.load(), 100);
}

TEST(ThreadPoolTest, ZeroWorkersRunsInlineOnSubmittingThread) {
  // The degenerate pool: every task runs during Submit, as worker 0, on
  // the submitting thread itself.
  ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 0u);
  const std::thread::id self = std::this_thread::get_id();
  std::thread::id ran_on;
  size_t ran_as = 99;
  auto f = pool.Submit([&](size_t worker_id) {
    ran_on = std::this_thread::get_id();
    ran_as = worker_id;
  });
  // Inline execution completes before Submit returns.
  EXPECT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  f.get();
  EXPECT_EQ(ran_on, self);
  EXPECT_EQ(ran_as, 0u);
}

TEST(ThreadPoolTest, OneWorkerPreservesFifoOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(
        pool.Submit([&order, i](size_t) { order.push_back(i); }));
  }
  for (auto& f : futures) f.get();
  ASSERT_EQ(order.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(2);
  auto bad = pool.Submit(
      [](size_t) { throw std::runtime_error("kernel blew up"); });
  auto good = pool.Submit([](size_t) {});
  EXPECT_THROW(bad.get(), std::runtime_error);
  // One task's failure never poisons the pool or its neighbours.
  good.get();
  std::atomic<bool> ran{false};
  pool.Submit([&ran](size_t) { ran = true; }).get();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, ShutdownDrainsPendingWork) {
  // Queue far more tasks than workers, then shut down immediately: every
  // already-submitted future must still complete (drain semantics — no
  // future returned by Submit is ever abandoned).
  ThreadPool pool(2);
  std::atomic<int> runs{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.Submit([&runs](size_t) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      ++runs;
    }));
  }
  pool.Shutdown();
  for (auto& f : futures) f.get();
  EXPECT_EQ(runs.load(), 64);
  // After shutdown the pool degenerates to inline execution.
  std::atomic<bool> late{false};
  pool.Submit([&late](size_t) { late = true; }).get();
  EXPECT_TRUE(late.load());
  pool.Shutdown();  // idempotent
}

TEST(ThreadPoolTest, EnsureWorkersGrowsButNeverShrinks) {
  ThreadPool pool(1);
  pool.EnsureWorkers(3);
  EXPECT_EQ(pool.worker_count(), 3u);
  pool.EnsureWorkers(2);
  EXPECT_EQ(pool.worker_count(), 3u);
  std::atomic<int> runs{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 30; ++i) {
    futures.push_back(pool.Submit([&runs](size_t worker_id) {
      EXPECT_LT(worker_id, 3u);
      ++runs;
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(runs.load(), 30);
}

TEST(ThreadPoolTest, SharedPoolGrowsOnDemand) {
  ThreadPool& a = SharedThreadPool(2);
  EXPECT_GE(a.worker_count(), 2u);
  ThreadPool& b = SharedThreadPool(3);
  EXPECT_EQ(&a, &b);
  EXPECT_GE(b.worker_count(), 3u);
}

// --- ParallelMorsels ---------------------------------------------------------

TEST(ParallelMorselsTest, CoversRangeInDisjointMorsels) {
  ThreadPool pool(4);
  const size_t n = 1000, morsel = 64;
  std::vector<std::atomic<int>> touched(n);
  size_t dispatched = 0;
  Status s = ParallelMorsels(
      pool, n, morsel,
      [&](size_t begin, size_t end, size_t worker_id) -> Status {
        EXPECT_LT(worker_id, 4u);
        EXPECT_LE(end - begin, morsel);
        for (size_t i = begin; i < end; ++i) ++touched[i];
        return Status::OK();
      },
      &dispatched);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(dispatched, (n + morsel - 1) / morsel);
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(touched[i].load(), 1) << i;
}

TEST(ParallelMorselsTest, EmptyRangeDispatchesNothing) {
  ThreadPool pool(2);
  size_t dispatched = 77;
  Status s = ParallelMorsels(
      pool, 0, 16,
      [](size_t, size_t, size_t) -> Status {
        ADD_FAILURE() << "body ran on an empty range";
        return Status::OK();
      },
      &dispatched);
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(dispatched, 0u);
}

TEST(ParallelMorselsTest, FirstErrorInMorselOrderWins) {
  // Morsels 3 and 7 both fail; the surfaced status must be morsel 3's
  // regardless of scheduling, mirroring the serial loop's first error.
  ThreadPool pool(4);
  Status s = ParallelMorsels(
      pool, 100, 10,
      [](size_t begin, size_t, size_t) -> Status {
        const size_t m = begin / 10;
        if (m == 3) return Status::InvalidArgument("morsel three");
        if (m == 7) return Status::InvalidArgument("morsel seven");
        return Status::OK();
      },
      nullptr);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("morsel three"), std::string::npos)
      << s.ToString();
}

TEST(ParallelMorselsTest, InlinePoolStillCoversEverything) {
  ThreadPool pool(0);
  std::vector<int> touched(257, 0);
  size_t dispatched = 0;
  Status s = ParallelMorsels(
      pool, touched.size(), 16,
      [&](size_t begin, size_t end, size_t worker_id) -> Status {
        EXPECT_EQ(worker_id, 0u);
        for (size_t i = begin; i < end; ++i) ++touched[i];
        return Status::OK();
      },
      &dispatched);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(dispatched, 17u);
  for (size_t i = 0; i < touched.size(); ++i) EXPECT_EQ(touched[i], 1) << i;
}

}  // namespace
}  // namespace hrdm::util
