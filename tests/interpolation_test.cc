// Tests for the interpolation functions (Figure 9's representation-level →
// model-level mapping).

#include "core/interpolation.h"

#include <gtest/gtest.h>

namespace hrdm {
namespace {

TemporalValue Stored(std::vector<Segment> segs) {
  return *TemporalValue::FromSegments(std::move(segs));
}

TEST(InterpolationTest, DiscreteIsRestriction) {
  TemporalValue f = Stored({{Interval(0, 2), Value::Int(1)},
                            {Interval(6, 8), Value::Int(2)}});
  auto g = Interpolate(f, Span(1, 7), InterpolationKind::kDiscrete);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->domain().ToString(), "{[1,2],[6,7]}");
  EXPECT_TRUE(g->ValueAt(4).absent());
}

TEST(InterpolationTest, StepwiseFillsGaps) {
  TemporalValue f = Stored({{Interval::At(0), Value::Int(10)},
                            {Interval::At(5), Value::Int(20)}});
  auto g = Interpolate(f, Span(0, 9), InterpolationKind::kStepwise);
  ASSERT_TRUE(g.ok());
  // 10 holds on [0,4], 20 from 5 to the end of the target.
  EXPECT_EQ(g->ValueAt(0), Value::Int(10));
  EXPECT_EQ(g->ValueAt(4), Value::Int(10));
  EXPECT_EQ(g->ValueAt(5), Value::Int(20));
  EXPECT_EQ(g->ValueAt(9), Value::Int(20));
  EXPECT_EQ(g->domain().ToString(), "{[0,9]}");
}

TEST(InterpolationTest, StepwiseUndefinedBeforeFirstSample) {
  TemporalValue f = Stored({{Interval::At(5), Value::Int(20)}});
  auto g = Interpolate(f, Span(0, 9), InterpolationKind::kStepwise);
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g->ValueAt(4).absent());
  EXPECT_EQ(g->ValueAt(5), Value::Int(20));
  EXPECT_EQ(g->domain().ToString(), "{[5,9]}");
}

TEST(InterpolationTest, StepwiseRespectsFragmentedTarget) {
  TemporalValue f = Stored({{Interval::At(0), Value::Int(1)}});
  const Lifespan target =
      Lifespan::FromIntervals({Interval(0, 2), Interval(6, 8)});
  auto g = Interpolate(f, target, InterpolationKind::kStepwise);
  ASSERT_TRUE(g.ok());
  // The value persists across the target's gap but is only *defined* on the
  // target (vls) chronons.
  EXPECT_EQ(g->domain(), target);
  EXPECT_EQ(g->ValueAt(7), Value::Int(1));
  EXPECT_TRUE(g->ValueAt(4).absent());
}

TEST(InterpolationTest, StepwiseIdempotentOnTotalFunctions) {
  TemporalValue f = Stored({{Interval(0, 4), Value::Int(1)},
                            {Interval(5, 9), Value::Int(2)}});
  auto g = Interpolate(f, Span(0, 9), InterpolationKind::kStepwise);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(*g, f);
}

TEST(InterpolationTest, LinearInterpolatesBetweenSamples) {
  TemporalValue f = Stored({{Interval::At(0), Value::Double(10.0)},
                            {Interval::At(4), Value::Double(30.0)}});
  auto g = Interpolate(f, Span(0, 6), InterpolationKind::kLinear);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->ValueAt(0), Value::Double(10.0));
  EXPECT_EQ(g->ValueAt(1), Value::Double(15.0));
  EXPECT_EQ(g->ValueAt(2), Value::Double(20.0));
  EXPECT_EQ(g->ValueAt(3), Value::Double(25.0));
  EXPECT_EQ(g->ValueAt(4), Value::Double(30.0));
  // Step extension after the last sample.
  EXPECT_EQ(g->ValueAt(5), Value::Double(30.0));
  EXPECT_EQ(g->ValueAt(6), Value::Double(30.0));
}

TEST(InterpolationTest, LinearRequiresDouble) {
  TemporalValue f = Stored({{Interval::At(0), Value::Int(10)}});
  auto g = Interpolate(f, Span(0, 5), InterpolationKind::kLinear);
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kTypeError);
}

TEST(InterpolationTest, LinearSkipsGapChrononsOutsideTarget) {
  TemporalValue f = Stored({{Interval::At(0), Value::Double(0.0)},
                            {Interval::At(10), Value::Double(10.0)}});
  const Lifespan target = Lifespan::FromIntervals({Interval(0, 2),
                                                   Interval(9, 10)});
  auto g = Interpolate(f, target, InterpolationKind::kLinear);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->ValueAt(1), Value::Double(1.0));
  EXPECT_EQ(g->ValueAt(9), Value::Double(9.0));
  EXPECT_TRUE(g->ValueAt(5).absent());  // outside target
  EXPECT_EQ(g->domain(), target);
}

TEST(InterpolationTest, EmptyInputsYieldEmpty) {
  for (auto kind : {InterpolationKind::kDiscrete,
                    InterpolationKind::kStepwise,
                    InterpolationKind::kLinear}) {
    auto g = Interpolate(TemporalValue(), Span(0, 5), kind);
    ASSERT_TRUE(g.ok());
    EXPECT_TRUE(g->empty());
  }
  TemporalValue f = Stored({{Interval::At(0), Value::Double(1.0)}});
  for (auto kind : {InterpolationKind::kDiscrete,
                    InterpolationKind::kStepwise,
                    InterpolationKind::kLinear}) {
    auto g = Interpolate(f, Lifespan::Empty(), kind);
    ASSERT_TRUE(g.ok());
    EXPECT_TRUE(g->empty()) << InterpolationKindName(kind);
  }
}

TEST(InterpolationTest, ResultDomainAlwaysInsideTarget) {
  TemporalValue f = Stored({{Interval(0, 20), Value::Double(1.0)}});
  const Lifespan target = Span(5, 10);
  for (auto kind : {InterpolationKind::kDiscrete,
                    InterpolationKind::kStepwise,
                    InterpolationKind::kLinear}) {
    auto g = Interpolate(f, target, kind);
    ASSERT_TRUE(g.ok());
    EXPECT_TRUE(target.ContainsAll(g->domain()))
        << InterpolationKindName(kind);
  }
}

TEST(InterpolationTest, KindNamesRoundTrip) {
  for (auto kind : {InterpolationKind::kDiscrete,
                    InterpolationKind::kStepwise,
                    InterpolationKind::kLinear}) {
    auto back = InterpolationKindFromName(InterpolationKindName(kind));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, kind);
  }
  EXPECT_FALSE(InterpolationKindFromName("spline").ok());
}

}  // namespace
}  // namespace hrdm
