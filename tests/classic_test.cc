// Unit tests for the classical (snapshot) relational algebra baseline.

#include "classic/classic.h"

#include <gtest/gtest.h>

namespace hrdm::classic {
namespace {

SnapshotRelation Emp() {
  SnapshotRelation s({Column{"Name", DomainType::kString},
                      Column{"Salary", DomainType::kInt},
                      Column{"Dept", DomainType::kString}});
  s.InsertRow({Value::String("john"), Value::Int(20), Value::String("t")});
  s.InsertRow({Value::String("mary"), Value::Int(30), Value::String("t")});
  s.InsertRow({Value::String("bob"), Value::Int(30), Value::String("s")});
  return s;
}

TEST(SnapshotRelationTest, SetSemantics) {
  SnapshotRelation s({Column{"A", DomainType::kInt}});
  s.InsertRow({Value::Int(1)});
  s.InsertRow({Value::Int(1)});  // duplicate collapses
  s.InsertRow({Value::Int(2)});
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.Contains({Value::Int(1)}));
  EXPECT_FALSE(s.Contains({Value::Int(9)}));
}

TEST(ClassicAlgebraTest, Select) {
  auto r = Select(Emp(), "Salary", CompareOp::kGe, Value::Int(30));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2u);
  EXPECT_FALSE(Select(Emp(), "Nope", CompareOp::kEq, Value::Int(1)).ok());
}

TEST(ClassicAlgebraTest, SelectAttr) {
  SnapshotRelation s({Column{"A", DomainType::kInt},
                      Column{"B", DomainType::kInt}});
  s.InsertRow({Value::Int(1), Value::Int(1)});
  s.InsertRow({Value::Int(1), Value::Int(2)});
  auto r = SelectAttr(s, "A", CompareOp::kEq, "B");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 1u);
}

TEST(ClassicAlgebraTest, ProjectDeduplicates) {
  auto r = Project(Emp(), {"Dept"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2u);  // t, s
  EXPECT_EQ(r->arity(), 1u);
}

TEST(ClassicAlgebraTest, SetOps) {
  SnapshotRelation a({Column{"A", DomainType::kInt}});
  a.InsertRow({Value::Int(1)});
  a.InsertRow({Value::Int(2)});
  SnapshotRelation b({Column{"A", DomainType::kInt}});
  b.InsertRow({Value::Int(2)});
  b.InsertRow({Value::Int(3)});
  EXPECT_EQ(Union(a, b)->size(), 3u);
  EXPECT_EQ(Intersect(a, b)->size(), 1u);
  EXPECT_EQ(Difference(a, b)->size(), 1u);
  SnapshotRelation c({Column{"B", DomainType::kInt}});
  EXPECT_FALSE(Union(a, c).ok());  // header mismatch
}

TEST(ClassicAlgebraTest, ProductAndJoin) {
  SnapshotRelation a({Column{"A", DomainType::kInt}});
  a.InsertRow({Value::Int(1)});
  a.InsertRow({Value::Int(2)});
  SnapshotRelation b({Column{"B", DomainType::kInt}});
  b.InsertRow({Value::Int(2)});
  b.InsertRow({Value::Int(3)});
  EXPECT_EQ(CartesianProduct(a, b)->size(), 4u);
  EXPECT_EQ(ThetaJoin(a, "A", CompareOp::kEq, b, "B")->size(), 1u);
  EXPECT_EQ(ThetaJoin(a, "A", CompareOp::kLt, b, "B")->size(), 3u);
  EXPECT_FALSE(CartesianProduct(a, a).ok());  // non-disjoint
}

TEST(ClassicAlgebraTest, NaturalJoin) {
  SnapshotRelation a({Column{"K", DomainType::kInt},
                      Column{"X", DomainType::kString}});
  a.InsertRow({Value::Int(1), Value::String("x1")});
  a.InsertRow({Value::Int(2), Value::String("x2")});
  SnapshotRelation b({Column{"K", DomainType::kInt},
                      Column{"Y", DomainType::kString}});
  b.InsertRow({Value::Int(2), Value::String("y2")});
  b.InsertRow({Value::Int(3), Value::String("y3")});
  auto j = NaturalJoin(a, b);
  ASSERT_TRUE(j.ok());
  ASSERT_EQ(j->size(), 1u);
  EXPECT_EQ(j->arity(), 3u);  // K, X, Y
  EXPECT_EQ(j->rows()[0][0], Value::Int(2));
}

TEST(ClassicAlgebraTest, AbsentCellsNeverMatch) {
  SnapshotRelation s({Column{"A", DomainType::kInt}});
  s.InsertRow({Value()});
  auto r = Select(s, "A", CompareOp::kEq, Value::Int(1));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
  auto ne = Select(s, "A", CompareOp::kNe, Value::Int(1));
  ASSERT_TRUE(ne.ok());
  EXPECT_TRUE(ne->empty());  // absent is not "not equal" either
}

TEST(ClassicAlgebraTest, ToStringIsDeterministic) {
  auto s = Emp();
  EXPECT_EQ(s.ToString(), Emp().ToString());
  EXPECT_NE(s.ToString().find("john"), std::string::npos);
}

}  // namespace
}  // namespace hrdm::classic
