#ifndef HRDM_TESTS_STORAGE_TEST_UTIL_H_
#define HRDM_TESTS_STORAGE_TEST_UTIL_H_

// Shared machinery for the durability suites (wal_test, storage_engine_test,
// crash_recovery_test, recovery_differential_test, storage_fuzz_test):
//
//  * TempDir — a fresh directory under $TMPDIR (so CI can point the crash
//    suites at a tmpfs), recursively removed on destruction;
//  * WorkloadRunner — a deterministic, seeded DML/DDL op stream that can be
//    replayed against any target exposing the Database mutation surface
//    (Database, LoggedDatabase, StorageEngine). The crash harness runs the
//    same seed in the child (against a StorageEngine) and in the parent
//    (against an in-memory Database oracle) and compares the recovered
//    state to the oracle's prefix states.
//
// WorkloadRunner issues AT MOST ONE logged mutation per Step() so that a
// crash between any two steps lands exactly on an oracle prefix state.

#include <cstdlib>
#include <cstdio>
#include <string>
#include <vector>

#include <sys/stat.h>
#include <unistd.h>

#include "storage/database.h"
#include "storage/changelog.h"
#include "storage/storage_engine.h"
#include "util/file.h"
#include "util/random.h"

namespace hrdm::storage {
namespace testing {

/// A fresh directory under $TMPDIR (default /tmp), removed (with its
/// regular-file contents) when the object dies.
class TempDir {
 public:
  explicit TempDir(const char* tag) {
    const char* base = std::getenv("TMPDIR");
    std::string tmpl = std::string(base != nullptr && *base != '\0' ? base
                                                                    : "/tmp");
    if (!tmpl.empty() && tmpl.back() == '/') tmpl.pop_back();
    tmpl += "/hrdm_" + std::string(tag) + "_XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    if (mkdtemp(buf.data()) == nullptr) {
      std::perror("mkdtemp");
      std::abort();  // tests cannot proceed without scratch space
    }
    path_.assign(buf.data());
  }

  ~TempDir() { RemoveAll(); }

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  const std::string& path() const { return path_; }

  /// Deletes every regular file inside and the directory itself (the
  /// engine never nests directories).
  void RemoveAll() {
    if (path_.empty()) return;
    auto entries = util::ListDir(path_);
    if (entries.ok()) {
      for (const std::string& name : *entries) {
        (void)util::RemoveFileIfExists(path_ + "/" + name);
      }
    }
    ::rmdir(path_.c_str());
    path_.clear();
  }

 private:
  std::string path_;
};

inline const Database& DbOf(const Database& db) { return db; }
inline const Database& DbOf(const LoggedDatabase& ldb) { return ldb.db(); }
inline const Database& DbOf(const StorageEngine& engine) {
  return engine.db();
}

/// A deterministic stream of storage mutations: same seed + same call
/// sequence => same operations and (because every target shares Database
/// semantics) the same success/failure outcomes and the same end state.
///
/// Step 0 creates relation "obj" (Id:string key, X:int, Y:string), steps
/// 1-2 build its indexes, and every later step draws one random mutation:
/// births, temporal assignment, death, reincarnation, schema evolution and
/// occasional DDL against an auxiliary relation. Exactly one loggable call
/// per step.
class WorkloadRunner {
 public:
  static constexpr TimePoint kHorizon = 60;

  /// `id_prefix` namespaces the generated object keys ("o0", "o1", ... by
  /// default) — concurrent writer threads give each runner its own prefix
  /// so their births target disjoint objects while still contending on the
  /// same relation (tests/concurrency_fuzz_test.cc).
  explicit WorkloadRunner(uint64_t seed, std::string id_prefix = "o")
      : rng_(seed), prefix_(std::move(id_prefix)) {}

  /// Runs step `step` (callers must invoke steps 0,1,2,... in order so the
  /// rng stream stays aligned). Returns the mutation's status: failures
  /// are expected (e.g. assigning to a dead object) and are not logged by
  /// an engine target.
  template <typename Target>
  Status Step(Target* target, int step) {
    const Lifespan full = Span(0, kHorizon - 1);
    if (step == 0) {
      return target->CreateRelation(
          "obj",
          {{"Id", DomainType::kString, full, InterpolationKind::kDiscrete},
           {"X", DomainType::kInt, full, InterpolationKind::kStepwise},
           {"Y", DomainType::kString, full, InterpolationKind::kStepwise}},
          {"Id"});
    }
    if (step == 1) return target->CreateLifespanIndex("obj");
    if (step == 2) return target->CreateValueIndex("obj", "X");

    switch (rng_.Uniform(0, 9)) {
      case 0:
      case 1:
      case 2: {  // birth
        auto scheme = DbOf(*target).catalog().Get("obj");
        if (!scheme.ok()) return scheme.status();
        const TimePoint b = rng_.Uniform(0, kHorizon - 2);
        const TimePoint e = rng_.Uniform(b, kHorizon - 1);
        Tuple::Builder builder(*scheme, Span(b, e));
        builder.SetConstant(
            "Id", Value::String(prefix_ + std::to_string(inserted_)));
        builder.SetAt("X", b, Value::Int(rng_.Uniform(0, 99)));
        auto t = std::move(builder).Build();
        if (!t.ok()) return t.status();
        Status s = target->Insert("obj", *std::move(t));
        if (s.ok()) ++inserted_;
        return s;
      }
      case 3:
      case 4: {  // temporal assignment (may cleanly fail)
        const int target_id =
            inserted_ == 0 ? 0 : static_cast<int>(rng_.Uniform(0, inserted_));
        const TimePoint b = rng_.Uniform(0, kHorizon - 1);
        const TimePoint e =
            std::min<TimePoint>(kHorizon - 1, b + rng_.Uniform(0, 15));
        const bool int_attr = rng_.Chance(0.5);
        return target->Assign("obj", KeyOf(target_id),
                              int_attr ? "X" : "Y", Span(b, e),
                              int_attr ? Value::Int(rng_.Uniform(0, 99))
                                       : Value::String(rng_.Identifier(4)));
      }
      case 5: {  // death
        const int target_id =
            inserted_ == 0 ? 0 : static_cast<int>(rng_.Uniform(0, inserted_));
        return target->EndLifespan("obj", KeyOf(target_id),
                                   rng_.Uniform(1, kHorizon - 1));
      }
      case 6: {  // reincarnation
        const int target_id =
            inserted_ == 0 ? 0 : static_cast<int>(rng_.Uniform(0, inserted_));
        const TimePoint b = rng_.Uniform(0, kHorizon - 2);
        return target->Reincarnate("obj", KeyOf(target_id),
                                   Span(b, rng_.Uniform(b, kHorizon - 1)));
      }
      case 7: {  // schema evolution: close OR reopen Y (one call per step)
        if (rng_.Chance(0.5)) {
          return target->CloseAttribute("obj", "Y",
                                        rng_.Uniform(1, kHorizon - 1));
        }
        const TimePoint b = rng_.Uniform(0, kHorizon - 2);
        return target->ReopenAttribute("obj", "Y",
                                       Span(b, rng_.Uniform(b, kHorizon - 1)));
      }
      case 8: {  // rare: widen the scheme / index the string attribute
        if (rng_.Chance(0.7)) {
          return target->Assign("obj", KeyOf(0), "X",
                                Lifespan::Point(rng_.Uniform(0, kHorizon - 1)),
                                Value::Int(rng_.Uniform(0, 99)));
        }
        if (rng_.Chance(0.5)) return target->CreateValueIndex("obj", "Y");
        return target->AddAttribute(
            "obj", {"Z" + std::to_string(step), DomainType::kInt,
                    Span(0, kHorizon - 1), InterpolationKind::kStepwise});
      }
      default: {  // auxiliary relation churn: create / drop
        if (DbOf(*target).Get("aux").ok()) {
          return target->DropRelation("aux");
        }
        return target->CreateRelation(
            "aux",
            {{"K", DomainType::kInt, Span(0, kHorizon - 1),
              InterpolationKind::kDiscrete}},
            {"K"});
      }
    }
  }

 private:
  std::vector<Value> KeyOf(int i) const {
    return {Value::String(prefix_ + std::to_string(i))};
  }

  Rng rng_;
  std::string prefix_ = "o";
  int inserted_ = 0;
};

}  // namespace testing
}  // namespace hrdm::storage

#endif  // HRDM_TESTS_STORAGE_TEST_UTIL_H_
