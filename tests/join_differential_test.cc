// Differential join suite: for random databases, every physical join
// strategy (nested loop, hash, merge) must produce results tuple-for-tuple,
// chronon-for-chronon identical to
//  * each other,
//  * the SELECT-WHEN ∘ × plan executed through ProductJoinCursor (the
//    paper's Section 5 equivalence: JOIN ≡ the appropriate SELECT-WHEN of
//    the Cartesian product),
//  * the whole-relation ThetaJoin/EquiJoin/NaturalJoin/TimeJoin APIs,
//  * the materializing interpreter,
// with every plan execution swept over the batch-size axis (exact
// rendered-output equality across sizes — see tests/differential_util.h).
// Plus directed lifespan edge cases: empty inputs, single-chronon
// overlaps, join attributes whose value changes inside the overlap window,
// and the no-shared-attribute NATURAL-JOIN degenerate product.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "algebra/join.h"
#include "differential_util.h"
#include "query/executor.h"
#include "query/parser.h"
#include "query/plan.h"
#include "test_seeds.h"
#include "util/random.h"
#include "workload/generators.h"

namespace hrdm::query {
namespace {

constexpr char kSeedEnv[] = "HRDM_JOIN_DIFF_SEEDS";

/// Drains `hrql` through a plan with the given forced join strategy, swept
/// over the batch-size axis.
Result<Relation> RunForced(const storage::Database& db,
                           const std::string& hrql, JoinStrategy strategy) {
  PlanOptions options;
  options.force_join_strategy = strategy;
  return hrdm::testing::RunBatchInvariant(db, hrql, options);
}

/// Runs `hrql` under all three forced strategies (each batch-size-swept)
/// plus the materializing interpreter, asserts pairwise set equality, and
/// returns one result. `reference`, if non-null, is additionally compared
/// (the whole-relation API answer).
void ExpectAllStrategiesAgree(const storage::Database& db,
                              const std::string& hrql,
                              const Relation* reference) {
  auto nested = RunForced(db, hrql, JoinStrategy::kNestedLoop);
  auto hash = RunForced(db, hrql, JoinStrategy::kHash);
  auto merge = RunForced(db, hrql, JoinStrategy::kMerge);
  ASSERT_TRUE(nested.ok()) << hrql << ": " << nested.status().ToString();
  ASSERT_TRUE(hash.ok()) << hrql << ": " << hash.status().ToString();
  ASSERT_TRUE(merge.ok()) << hrql << ": " << merge.status().ToString();
  EXPECT_TRUE(hash->EqualsAsSet(*nested))
      << hrql << "\nhash:\n"
      << hash->ToString() << "nested loop:\n"
      << nested->ToString();
  EXPECT_TRUE(merge->EqualsAsSet(*nested))
      << hrql << "\nmerge:\n"
      << merge->ToString() << "nested loop:\n"
      << nested->ToString();
  hrdm::testing::ExpectMatchesOracle(db, hrql, *nested, reference);
}

TEST(JoinDifferentialTest, RandomDatabases) {
  // ≥100 random databases; override seeds with HRDM_JOIN_DIFF_SEEDS=....
  for (uint64_t seed : hrdm::testing::SeedsFromEnv(
           kSeedEnv, hrdm::testing::DefaultFuzzSeeds())) {
    SCOPED_TRACE(hrdm::testing::SeedTrace(kSeedEnv, seed));
    auto db = hrdm::testing::RandomJoinStyleDb(
        seed, {.ra_tuples = 10, .na_tuples = 8, .nb_tuples = 7});
    const Relation& ra = **db.Get("ra");
    const Relation& rb = **db.Get("rb");
    const Relation& na = **db.Get("na");
    const Relation& nb = **db.Get("nb");

    // EQUIJOIN: every strategy vs the whole-relation API...
    auto equi = EquiJoin(ra, "A0", rb, "B0");
    ASSERT_TRUE(equi.ok());
    ExpectAllStrategiesAgree(db, "join(ra, rb, A0 = B0)", &*equi);
    // ...and vs SELECT-WHEN ∘ × through ProductJoinCursor (Section 5).
    auto via_product = query::Run(
        "select_when(product(ra, rb), A0 = B0)", db);
    ASSERT_TRUE(via_product.ok());
    EXPECT_TRUE(via_product->EqualsAsSet(*equi)) << "seed " << seed;

    // General θ (no equi pattern → every strategy falls back identically,
    // but the whole-relation comparison still bites).
    auto theta = ThetaJoin(ra, "A0", CompareOp::kLe, rb, "B0");
    ASSERT_TRUE(theta.ok());
    ExpectAllStrategiesAgree(db, "join(ra, rb, A0 <= B0)", &*theta);

    // NATURAL-JOIN with a shared attribute (some values varying in time).
    auto nat = NaturalJoin(na, nb);
    ASSERT_TRUE(nat.ok());
    ExpectAllStrategiesAgree(db, "natjoin(na, nb)", &*nat);

    // TIME-JOIN driven by ra.Ref.
    auto tj = TimeJoin(ra, "Ref", rb);
    ASSERT_TRUE(tj.ok());
    ExpectAllStrategiesAgree(db, "timejoin(ra, rb, Ref)", &*tj);
  }
}

// ---------------------------------------------------------------------------
// Directed lifespan edge cases.
// ---------------------------------------------------------------------------

const Lifespan kFull = Span(0, 49);

SchemePtr LeftScheme() {
  return *RelationScheme::Make(
      "el",
      {{"LId", DomainType::kString, kFull, InterpolationKind::kDiscrete},
       {"LV", DomainType::kInt, kFull, InterpolationKind::kStepwise}},
      {"LId"});
}

SchemePtr RightScheme() {
  return *RelationScheme::Make(
      "er",
      {{"RId", DomainType::kString, kFull, InterpolationKind::kDiscrete},
       {"RV", DomainType::kInt, kFull, InterpolationKind::kStepwise}},
      {"RId"});
}

storage::Database EdgeDb(const std::vector<std::pair<Lifespan, int>>& lefts,
                         const std::vector<std::pair<Lifespan, int>>& rights) {
  storage::Database db;
  auto ls = LeftScheme();
  auto rs = RightScheme();
  EXPECT_TRUE(db.CreateRelation(ls).ok());
  EXPECT_TRUE(db.CreateRelation(rs).ok());
  int i = 0;
  for (const auto& [l, v] : lefts) {
    Tuple::Builder b(ls, l);
    b.SetConstant("LId", Value::String("l" + std::to_string(i++)));
    b.SetConstant("LV", Value::Int(v));
    EXPECT_TRUE(db.Insert("el", *std::move(b).Build()).ok());
  }
  i = 0;
  for (const auto& [l, v] : rights) {
    Tuple::Builder b(rs, l);
    b.SetConstant("RId", Value::String("r" + std::to_string(i++)));
    b.SetConstant("RV", Value::Int(v));
    EXPECT_TRUE(db.Insert("er", *std::move(b).Build()).ok());
  }
  return db;
}

TEST(JoinEdgeCaseTest, EmptyInputsOnEitherSide) {
  // Empty build side, empty probe side, both empty: every strategy yields
  // the empty relation and stays well-behaved.
  auto both = EdgeDb({}, {});
  auto left_only = EdgeDb({{Span(0, 9), 1}}, {});
  auto right_only = EdgeDb({}, {{Span(0, 9), 1}});
  for (auto* db : {&both, &left_only, &right_only}) {
    for (JoinStrategy s : {JoinStrategy::kNestedLoop, JoinStrategy::kHash}) {
      auto r = RunForced(*db, "join(el, er, LV = RV)", s);
      ASSERT_TRUE(r.ok());
      EXPECT_TRUE(r->empty());
    }
  }
}

TEST(JoinEdgeCaseTest, NonOverlappingLifespansProduceNothing) {
  // Equal values but disjoint lifespans: the θ condition never holds at a
  // common chronon — the "empty joined lifespan" case.
  auto db = EdgeDb({{Span(0, 9), 7}}, {{Span(20, 29), 7}});
  auto equi = EquiJoin(**db.Get("el"), "LV", **db.Get("er"), "RV");
  ASSERT_TRUE(equi.ok());
  EXPECT_TRUE(equi->empty());
  for (JoinStrategy s : {JoinStrategy::kNestedLoop, JoinStrategy::kHash}) {
    auto r = RunForced(db, "join(el, er, LV = RV)", s);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->empty());
  }
}

TEST(JoinEdgeCaseTest, SingleChrononOverlap) {
  // Lifespans touch at exactly chronon 10.
  auto db = EdgeDb({{Span(0, 10), 7}}, {{Span(10, 29), 7}});
  auto equi = EquiJoin(**db.Get("el"), "LV", **db.Get("er"), "RV");
  ASSERT_TRUE(equi.ok());
  ASSERT_EQ(equi->size(), 1u);
  EXPECT_EQ(equi->tuple(0).lifespan().ToString(), "{[10]}");
  for (JoinStrategy s : {JoinStrategy::kNestedLoop, JoinStrategy::kHash}) {
    auto r = RunForced(db, "join(el, er, LV = RV)", s);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->EqualsAsSet(*equi));
  }
}

TEST(JoinEdgeCaseTest, ValueChangesInsideOverlapWindow) {
  // The left join attribute flips from 7 to 8 at chronon 10 while both
  // tuples live on [0,19]: the joined lifespan must be exactly the
  // sub-window where the equality holds, and the hash join must take its
  // varying-attribute fallback rather than missing the partial match.
  storage::Database db;
  auto ls = LeftScheme();
  auto rs = RightScheme();
  ASSERT_TRUE(db.CreateRelation(ls).ok());
  ASSERT_TRUE(db.CreateRelation(rs).ok());
  {
    Tuple::Builder b(ls, Span(0, 19));
    b.SetConstant("LId", Value::String("flip"));
    b.Set("LV", *TemporalValue::FromSegments(
                    {{Interval(0, 9), Value::Int(7)},
                     {Interval(10, 19), Value::Int(8)}}));
    ASSERT_TRUE(db.Insert("el", *std::move(b).Build()).ok());
  }
  {
    Tuple::Builder b(rs, Span(0, 19));
    b.SetConstant("RId", Value::String("const"));
    b.SetConstant("RV", Value::Int(7));
    ASSERT_TRUE(db.Insert("er", *std::move(b).Build()).ok());
  }
  auto equi = EquiJoin(**db.Get("el"), "LV", **db.Get("er"), "RV");
  ASSERT_TRUE(equi.ok());
  ASSERT_EQ(equi->size(), 1u);
  EXPECT_EQ(equi->tuple(0).lifespan().ToString(), "{[0,9]}");
  for (JoinStrategy s : {JoinStrategy::kNestedLoop, JoinStrategy::kHash}) {
    auto r = RunForced(db, "join(el, er, LV = RV)", s);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->EqualsAsSet(*equi)) << JoinStrategyName(s);
  }
}

TEST(JoinEdgeCaseTest, NaturalJoinWithoutSharedAttributesIsProduct) {
  // No shared attribute name: NATURAL-JOIN degenerates to the product over
  // the common lifespan (here [5,9]); the chooser must not pick hash.
  auto db = EdgeDb({{Span(0, 9), 1}}, {{Span(5, 14), 2}});
  auto expr = ParseExpr("natjoin(el, er)");
  ASSERT_TRUE(expr.ok());
  auto plan = Plan::Lower(*expr, DatabaseResolver(db));
  ASSERT_TRUE(plan.ok());
  auto streamed = plan->Drain();
  ASSERT_TRUE(streamed.ok());
  EXPECT_EQ(plan->stats().joins_nested_loop, 1u);
  EXPECT_EQ(plan->stats().joins_hash, 0u);
  auto nat = NaturalJoin(**db.Get("el"), **db.Get("er"));
  ASSERT_TRUE(nat.ok());
  ASSERT_EQ(nat->size(), 1u);
  EXPECT_EQ(nat->tuple(0).lifespan().ToString(), "{[5,9]}");
  EXPECT_TRUE(streamed->EqualsAsSet(*nat));
}

TEST(JoinEdgeCaseTest, ReincarnationLifespanConstantKeyHashes) {
  // A constant join value over a fragmented (reincarnation) lifespan is
  // still a CD member: the hash join may digest it, and the joined
  // lifespan honors the gap.
  auto db = EdgeDb({{Lifespan::FromIntervals({Interval(0, 4),
                                              Interval(20, 24)}),
                     7}},
                   {{Span(0, 29), 7}});
  auto equi = EquiJoin(**db.Get("el"), "LV", **db.Get("er"), "RV");
  ASSERT_TRUE(equi.ok());
  ASSERT_EQ(equi->size(), 1u);
  EXPECT_EQ(equi->tuple(0).lifespan().ToString(), "{[0,4],[20,24]}");
  for (JoinStrategy s : {JoinStrategy::kNestedLoop, JoinStrategy::kHash}) {
    auto r = RunForced(db, "join(el, er, LV = RV)", s);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->EqualsAsSet(*equi)) << JoinStrategyName(s);
  }
}

}  // namespace
}  // namespace hrdm::query
