// Operational verification of the Section 5 "consistent extension" claim:
// every HRDM operator degenerates to its classical counterpart when
// T = {now}. Phrased with the Snapshot/Lift mappings:
//
//     Snapshot(Op_H(Lift(s, now)), now)  ==  Op(s)
//
// for every classical relation s and every operator Op. Additionally,
// SELECT-IF and SELECT-WHEN "reduce to one another and to the traditional
// SELECT" on T = {now}, and WHEN maps to now/never.

#include <gtest/gtest.h>

#include "algebra/join.h"
#include "algebra/project.h"
#include "algebra/select.h"
#include "algebra/setops.h"
#include "algebra/timeslice.h"
#include "algebra/when.h"
#include "classic/classic.h"
#include "util/random.h"

namespace hrdm {
namespace {

using classic::Column;
using classic::Lift;
using classic::Row;
using classic::Snapshot;
using classic::SnapshotRelation;

constexpr TimePoint kNow = 42;

/// A random classical relation (Id string key + n int columns).
SnapshotRelation RandomSnapshot(Rng* rng, const std::string& prefix,
                                size_t rows, size_t cols,
                                int64_t value_range = 6) {
  std::vector<Column> columns;
  columns.push_back(Column{prefix + "Id", DomainType::kString});
  for (size_t c = 0; c < cols; ++c) {
    columns.push_back(
        Column{prefix + "C" + std::to_string(c), DomainType::kInt});
  }
  SnapshotRelation s(std::move(columns));
  for (size_t i = 0; i < rows; ++i) {
    Row row;
    row.push_back(Value::String(prefix + std::to_string(i)));
    for (size_t c = 0; c < cols; ++c) {
      row.push_back(Value::Int(rng->Uniform(0, value_range)));
    }
    s.InsertRow(std::move(row));
  }
  return s;
}

Relation LiftNow(const SnapshotRelation& s, const std::string& key) {
  auto lifted = Lift(s, kNow, {key});
  EXPECT_TRUE(lifted.ok()) << lifted.status().ToString();
  return *lifted;
}

TEST(ConsistencyTest, LiftThenSnapshotIsIdentity) {
  Rng rng(1);
  SnapshotRelation s = RandomSnapshot(&rng, "a", 10, 2);
  Relation lifted = LiftNow(s, "aId");
  auto back = Snapshot(lifted, kNow);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->EqualsAsSet(s));
  // And the lifted relation is empty at any other chronon.
  auto elsewhere = Snapshot(lifted, kNow + 1);
  ASSERT_TRUE(elsewhere.ok());
  EXPECT_TRUE(elsewhere->empty());
}

class ConsistencySeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConsistencySeedTest, SelectIfReducesToClassicSelect) {
  Rng rng(GetParam());
  SnapshotRelation s = RandomSnapshot(&rng, "a", 12, 2);
  Relation lifted = LiftNow(s, "aId");
  const Value threshold = Value::Int(3);
  for (CompareOp op : {CompareOp::kEq, CompareOp::kLt, CompareOp::kGe}) {
    auto classic_sel = classic::Select(s, "aC0", op, threshold);
    ASSERT_TRUE(classic_sel.ok());
    Predicate p = Predicate::AttrConst("aC0", op, threshold);
    for (Quantifier q : {Quantifier::kExists, Quantifier::kForall}) {
      // On T = {now}, IF and WHEN coincide with the classical select.
      auto hist_if = SelectIf(lifted, p, q, Lifespan::Point(kNow));
      ASSERT_TRUE(hist_if.ok());
      auto snap_if = Snapshot(*hist_if, kNow);
      ASSERT_TRUE(snap_if.ok());
      EXPECT_TRUE(snap_if->EqualsAsSet(*classic_sel))
          << "op=" << CompareOpName(op) << " q=" << QuantifierName(q);
    }
    auto hist_when = SelectWhen(lifted, p);
    ASSERT_TRUE(hist_when.ok());
    auto snap_when = Snapshot(*hist_when, kNow);
    ASSERT_TRUE(snap_when.ok());
    EXPECT_TRUE(snap_when->EqualsAsSet(*classic_sel));
  }
}

TEST_P(ConsistencySeedTest, ProjectReduces) {
  Rng rng(GetParam() * 3 + 1);
  SnapshotRelation s = RandomSnapshot(&rng, "a", 12, 3);
  Relation lifted = LiftNow(s, "aId");
  for (const std::vector<std::string>& attrs :
       {std::vector<std::string>{"aId", "aC1"},
        std::vector<std::string>{"aC0", "aC2"},
        std::vector<std::string>{"aC0"}}) {
    auto classic_proj = classic::Project(s, attrs);
    ASSERT_TRUE(classic_proj.ok());
    auto hist = Project(lifted, attrs);
    ASSERT_TRUE(hist.ok());
    auto snap = Snapshot(*hist, kNow);
    ASSERT_TRUE(snap.ok());
    EXPECT_TRUE(snap->EqualsAsSet(*classic_proj));
  }
}

TEST_P(ConsistencySeedTest, SetOpsReduce) {
  Rng rng(GetParam() * 7 + 2);
  // Two classical relations over the same header with overlapping rows.
  SnapshotRelation a = RandomSnapshot(&rng, "a", 10, 2, 2);
  SnapshotRelation b = RandomSnapshot(&rng, "a", 10, 2, 2);
  Relation la = LiftNow(a, "aId");
  Relation lb = LiftNow(b, "aId");

  auto cu = *classic::Union(a, b);
  auto ci = *classic::Intersect(a, b);
  auto cd = *classic::Difference(a, b);

  EXPECT_TRUE(Snapshot(*Union(la, lb), kNow)->EqualsAsSet(cu));
  EXPECT_TRUE(Snapshot(*Intersect(la, lb), kNow)->EqualsAsSet(ci));
  EXPECT_TRUE(Snapshot(*Difference(la, lb), kNow)->EqualsAsSet(cd));
}

TEST_P(ConsistencySeedTest, ProductAndJoinsReduce) {
  Rng rng(GetParam() * 11 + 5);
  SnapshotRelation a = RandomSnapshot(&rng, "a", 6, 1, 3);
  SnapshotRelation b = RandomSnapshot(&rng, "b", 6, 1, 3);
  Relation la = LiftNow(a, "aId");
  Relation lb = LiftNow(b, "bId");

  auto cp = *classic::CartesianProduct(a, b);
  auto hp = *CartesianProduct(la, lb);
  EXPECT_TRUE(Snapshot(hp, kNow)->EqualsAsSet(cp));

  for (CompareOp op : {CompareOp::kEq, CompareOp::kLe, CompareOp::kNe}) {
    auto cj = *classic::ThetaJoin(a, "aC0", op, b, "bC0");
    auto hj = *ThetaJoin(la, "aC0", op, lb, "bC0");
    EXPECT_TRUE(Snapshot(hj, kNow)->EqualsAsSet(cj))
        << CompareOpName(op);
  }
}

TEST_P(ConsistencySeedTest, NaturalJoinReduces) {
  Rng rng(GetParam() * 13 + 7);
  // Build two classical relations sharing column "K".
  SnapshotRelation a({{Column{"aId", DomainType::kString}},
                      {Column{"K", DomainType::kInt}}});
  SnapshotRelation b({{Column{"bId", DomainType::kString}},
                      {Column{"K", DomainType::kInt}}});
  for (int i = 0; i < 8; ++i) {
    a.InsertRow({Value::String("a" + std::to_string(i)),
                 Value::Int(rng.Uniform(0, 3))});
    b.InsertRow({Value::String("b" + std::to_string(i)),
                 Value::Int(rng.Uniform(0, 3))});
  }
  Relation la = LiftNow(a, "aId");
  Relation lb = LiftNow(b, "bId");
  auto cj = *classic::NaturalJoin(a, b);
  auto hj = *NaturalJoin(la, lb);
  EXPECT_TRUE(Snapshot(hj, kNow)->EqualsAsSet(cj));
}

TEST(ConsistencyTest, TimeSliceIsIdentityAtNow) {
  // Section 5: "TIME-SLICE can be viewed as the identity function defined
  // only for time now".
  Rng rng(3);
  SnapshotRelation s = RandomSnapshot(&rng, "a", 8, 2);
  Relation lifted = LiftNow(s, "aId");
  auto sliced = TimeSlice(lifted, Lifespan::Point(kNow));
  ASSERT_TRUE(sliced.ok());
  EXPECT_TRUE(Snapshot(*sliced, kNow)->EqualsAsSet(s));
}

TEST(ConsistencyTest, WhenIsNowOrNever) {
  // Section 5: "WHEN maps a relation either to now or to the empty set,
  // corresponding to either 'always' or 'never'".
  Rng rng(4);
  SnapshotRelation s = RandomSnapshot(&rng, "a", 5, 1);
  Relation lifted = LiftNow(s, "aId");
  EXPECT_EQ(When(lifted), Lifespan::Point(kNow));  // "always"
  Relation empty(lifted.scheme());
  EXPECT_TRUE(When(empty).empty());  // "never"
}

TEST(ConsistencyTest, LiftRejectsKeyViolations) {
  SnapshotRelation s({{Column{"Id", DomainType::kString}},
                      {Column{"X", DomainType::kInt}}});
  s.InsertRow({Value::String("a"), Value::Int(1)});
  s.InsertRow({Value::String("a"), Value::Int(2)});  // duplicate key
  auto lifted = Lift(s, kNow, {"Id"});
  EXPECT_FALSE(lifted.ok());
  EXPECT_EQ(lifted.status().code(), StatusCode::kConstraintViolation);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConsistencySeedTest,
                         ::testing::Values(1u, 2u, 17u, 99u, 31337u));

}  // namespace
}  // namespace hrdm
